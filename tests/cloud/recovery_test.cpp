// Self-healing recovery suite (DESIGN.md §15), under the `recovery`
// ctest label (also part of the unit/unit-asan/unit-tsan presets).
// Invariants:
//   1. Merkle anti-entropy converges a divergent pair by transferring
//      only the divergent files — a converged pair moves nothing, and a
//      corrupt replica is restored from the authentic copy.
//   2. A node killed mid-workload rejoins byte-identically through
//      hinted hand-off + scoped anti-entropy alone: no full-store scan
//      and zero quorum reads, moving less than a full snapshot.
//   3. A 2PC epoch whose coordinator dies between stage and commit
//      resolves on the survivors (presumed abort when no decision was
//      recorded, commit when the write-ahead verdict exists) — no epoch
//      stays staged-open.
//   4. snapshot() never pairs a file's bytes with another version's
//      metadata while writers run (torn-read regression, TSan-backed).
//   5. repair_all() still attempts files whose coordinator is dead by
//      falling back along the ring preference order.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "cloud/system.h"
#include "common/errors.h"
#include "crypto/sha256.h"
#include "loadgen/loadgen.h"
#include "../support/flight_dump_on_failure.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

// One install per binary: a failing recovery test dumps every node's
// flight-recorder ring so the fault sequence ships with the report.
[[maybe_unused]] const bool kFlightDumpInstalled =
    maabe::test_support::install_flight_dump_on_failure();

std::unique_ptr<CloudSystem> make_system(std::shared_ptr<const Group> grp,
                                         size_t nodes, size_t replication) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.replication = replication;
  return std::make_unique<CloudSystem>(
      grp, "recovery-suite", std::make_unique<LoopbackTransport>(),
      RetryPolicy(), cfg);
}

void enroll(CloudSystem& sys) {
  sys.add_authority("Med", {"Doctor"});
  sys.add_owner("hosp");
  sys.publish_authority_keys("Med", "hosp");
  sys.add_user("alice");
  sys.add_user("bob");
  sys.assign_attributes("Med", "alice", {"Doctor"});
  sys.assign_attributes("Med", "bob", {"Doctor"});
  sys.issue_user_key("Med", "alice", "hosp");
  sys.issue_user_key("Med", "bob", "hosp");
}

std::string record_of(const std::string& file_id) { return "record " + file_id; }

void upload_all(CloudSystem& sys, const std::vector<std::string>& files) {
  for (const std::string& f : files) {
    sys.upload("hosp", f, {{"a", bytes_of(record_of(f)), "Doctor@Med"}});
  }
}

std::vector<std::string> eight_files() {
  std::vector<std::string> files;
  for (int i = 0; i < 8; ++i) files.push_back("f" + std::to_string(i));
  return files;
}

void expect_replicas_converged(CloudSystem& sys,
                               const std::vector<std::string>& files) {
  Cluster& c = sys.cluster();
  for (const std::string& f : files) {
    const std::vector<std::string> replicas = c.replicas_for(f);
    ASSERT_FALSE(replicas.empty());
    ASSERT_TRUE(c.node_store(replicas.front()).has_file(f));
    const Bytes want =
        serialize(sys.group(), *c.node_store(replicas.front()).fetch(f));
    const uint64_t version = c.version_of(replicas.front(), f);
    for (const std::string& name : replicas) {
      ASSERT_TRUE(c.node_store(name).has_file(f))
          << "replica " << name << " missing '" << f << "'";
      EXPECT_EQ(serialize(sys.group(), *c.node_store(name).fetch(f)), want)
          << "replica " << name << " diverged on '" << f << "'";
      EXPECT_EQ(c.version_of(name, f), version)
          << "replica " << name << " at wrong version of '" << f << "'";
    }
  }
}

/// A file whose replica set contains `node` (deterministic placement;
/// with 8 files every node holds some).
std::string file_replicated_on(CloudSystem& sys, const std::string& node,
                               const std::vector<std::string>& files) {
  for (const std::string& f : files) {
    const auto replicas = sys.cluster().replicas_for(f);
    if (std::find(replicas.begin(), replicas.end(), node) != replicas.end())
      return f;
  }
  return "";
}

// ------------------------------------------------ Merkle anti-entropy --

TEST(RecoveryTest, SyncOnConvergedPairMovesNothing) {
  auto sys = make_system(Group::test_small(), 3, 3);
  enroll(*sys);
  upload_all(*sys, eight_files());
  ASSERT_EQ(sys->flush_pending(), 0u);

  const SyncReport rep = sys->cluster().recovery().sync("node:0", "node:1");
  EXPECT_TRUE(rep.converged_without_transfer());
  EXPECT_GE(rep.rounds, 1u);  // root digests compared and matched
  EXPECT_EQ(rep.shards_divergent, 0u);
  EXPECT_EQ(rep.bytes_transferred, 0u);
}

TEST(RecoveryTest, SyncRestoresCorruptReplicaFromAuthenticCopy) {
  auto sys = make_system(Group::test_small(), 3, 3);
  enroll(*sys);
  upload_all(*sys, {"f1"});
  ASSERT_EQ(sys->flush_pending(), 0u);

  // Rot one non-coordinator replica on disk: same version, different
  // bytes, recorded hash still pointing at the original. Only hashing
  // the *current* bytes lets the trees diverge on this.
  Cluster& c = sys->cluster();
  const std::string coord = c.route_for("f1");
  std::string victim;
  for (const std::string& name : c.node_names()) {
    if (name != coord) {
      victim = name;
      break;
    }
  }
  StoredFile rotted = *c.node_store(victim).fetch("f1");
  ASSERT_FALSE(rotted.slots.empty());
  ASSERT_GT(rotted.slots[0].sealed_data.size(), 10u);
  rotted.slots[0].sealed_data[10] ^= 0x40;
  c.node_store(victim).store(std::move(rotted));

  const SyncReport rep = c.recovery().sync(victim, coord);
  EXPECT_GE(rep.shards_divergent, 1u);
  EXPECT_EQ(rep.files_pulled, 1u);  // authentic copy wins, victim pulls
  EXPECT_GT(rep.bytes_transferred, 0u);
  EXPECT_EQ(serialize(sys->group(), *c.node_store(victim).fetch("f1")),
            serialize(sys->group(), *c.node_store(coord).fetch("f1")));
  EXPECT_TRUE(sys->download_report("alice", "f1").all_ok());

  // Once healed, a second pass is pure hash comparison.
  EXPECT_TRUE(c.recovery().sync(victim, coord).converged_without_transfer());
}

TEST(RecoveryTest, SyncRefusesDeadPeer) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  sys->cluster().kill_node("node:1");
  EXPECT_THROW(sys->cluster().recovery().sync("node:0", "node:1"),
               TransportError);
  EXPECT_THROW(sys->cluster().recovery().sync("node:1", "node:0"),
               TransportError);
}

// ------------------------------------------------- hinted hand-off --

TEST(RecoveryTest, HintsRecordedForDeadReplicaAndDrainedOnRejoin) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  const std::vector<std::string> files = eight_files();
  upload_all(*sys, files);
  ASSERT_EQ(sys->flush_pending(), 0u);

  const std::string fx = file_replicated_on(*sys, "node:1", files);
  ASSERT_FALSE(fx.empty());
  sys->cluster().kill_node("node:1");
  sys->upload("hosp", fx, {{"b", bytes_of("v2 " + fx), "Doctor@Med"}});
  sys->upload("hosp", fx, {{"c", bytes_of("v3 " + fx), "Doctor@Med"}});

  RecoveryManager& rec = sys->cluster().recovery();
  EXPECT_GE(rec.hint_count("node:1"), 1u);  // one hint at the max version
  EXPECT_GE(rec.pending_hints(), 1u);
  const RecoveryStats before = rec.stats();
  EXPECT_GE(before.hints_recorded, 2u);  // both parked writes left one

  sys->cluster().restart_node("node:1");
  EXPECT_EQ(rec.hint_count("node:1"), 0u);
  EXPECT_EQ(rec.pending_hints(), 0u);
  const RecoveryStats after = rec.stats();
  EXPECT_GE(after.hints_replayed, before.hints_replayed + 1);
  EXPECT_EQ(sys->flush_pending(), 0u);
  expect_replicas_converged(*sys, files);
  EXPECT_TRUE(sys->download_report("alice", fx).all_ok());
}

// ------------------------------------ rejoin without a full-store scan --

TEST(RecoveryChaos, KilledNodeRejoinsByteIdenticallyWithoutFullScan) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  const std::vector<std::string> files = eight_files();
  upload_all(*sys, files);
  ASSERT_EQ(sys->flush_pending(), 0u);
  expect_replicas_converged(*sys, files);

  const std::string fx = file_replicated_on(*sys, "node:1", files);
  ASSERT_FALSE(fx.empty());
  sys->cluster().kill_node("node:1");
  sys->upload("hosp", fx, {{"b", bytes_of("v2 " + fx), "Doctor@Med"}});
  sys->upload("hosp", fx, {{"c", bytes_of("v3 " + fx), "Doctor@Med"}});

  const ClusterStats cluster_before = sys->cluster().stats();
  const RecoveryStats rec_before = sys->cluster().recovery().stats();

  sys->cluster().restart_node("node:1");
  EXPECT_EQ(sys->flush_pending(), 0u);
  EXPECT_EQ(sys->replication_lag(), 0u);
  expect_replicas_converged(*sys, files);

  // Convergence came from hints + anti-entropy alone: the rejoin issued
  // zero quorum reads (the full-scan repair path), and moved strictly
  // less than the node's full store.
  const ClusterStats cluster_after = sys->cluster().stats();
  EXPECT_EQ(cluster_after.quorum_reads, cluster_before.quorum_reads);
  EXPECT_EQ(cluster_after.quorum_failures, cluster_before.quorum_failures);
  const RecoveryStats rec_after = sys->cluster().recovery().stats();
  EXPECT_GE(rec_after.rejoins, rec_before.rejoins + 1);
  EXPECT_GE(rec_after.hints_replayed, rec_before.hints_replayed + 1);
  const uint64_t moved = rec_after.bytes_transferred - rec_before.bytes_transferred;
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, sys->cluster().snapshot("node:1").size());
  EXPECT_TRUE(sys->download_report("alice", fx).all_ok());
}

TEST(RecoveryChaos, WorkloadKillAndRejoinConvergesUnderTraffic) {
  loadgen::WorkloadConfig cfg;
  cfg.nodes = 3;
  cfg.replication = 2;
  cfg.users = 4;
  cfg.files = 12;
  cfg.ops = 60;
  cfg.store_weight = 0.5;  // outage writes are what the rejoin must heal
  cfg.download_weight = 0.4;
  cfg.revoke_weight = 0.0;
  cfg.churn_weight = 0.1;
  cfg.flush_every = 0;  // no background replay: recovery works alone
  cfg.events.push_back(
      {10, loadgen::ScenarioEvent::Kind::kKillNode, "node:1", 0});
  cfg.events.push_back(
      {45, loadgen::ScenarioEvent::Kind::kRejoinNode, "node:1", 0});

  loadgen::LoadGenerator gen(Group::test_small(), cfg);
  gen.setup();
  const loadgen::WorkloadReport report = gen.run();

  EXPECT_EQ(report.rejoins, 1u);
  EXPECT_GT(report.recovery_convergence_ms, 0.0);
  EXPECT_GE(report.recovery_hints_replayed, 1u);
  EXPECT_GT(report.recovery_bytes_transferred, 0u);
  EXPECT_EQ(gen.system().flush_pending(), 0u);
  EXPECT_EQ(gen.system().replication_lag(), 0u);
  std::vector<std::string> files;
  for (size_t f = 0; f < cfg.files; ++f)
    files.push_back("file" + std::to_string(f));
  expect_replicas_converged(gen.system(), files);
}

// --------------------------------------- 2PC coordinator recovery --

TEST(RecoveryChaos, CoordinatorKilledAfterStagingResolvesPresumedAbort) {
  auto sys = make_system(Group::test_small(), 3, 3);
  enroll(*sys);
  const std::vector<std::string> files = {"f1", "f2", "f3"};
  upload_all(*sys, files);
  ASSERT_EQ(sys->flush_pending(), 0u);

  // Crash the coordinator after every node staged but before any
  // decision was recorded: peers are staged-open with empty decision
  // logs everywhere — the presumed-abort case.
  const std::string coord = sys->cluster().coordinator();
  std::atomic<bool> fired{false};
  sys->cluster().set_epoch_fault_hook(
      [&](uint64_t, const std::string& phase) {
        if (phase == "staged" && !fired.exchange(true)) {
          sys->cluster().kill_node(coord);
          throw TransportError(TransportError::Kind::kLost,
                               "injected coordinator crash");
        }
      });
  EXPECT_EQ(sys->revoke_attribute("Med", "bob", "Doctor"), 0u);
  ASSERT_TRUE(fired.load());
  size_t staged_open = 0;
  for (const std::string& name : sys->cluster().node_names()) {
    if (name != coord) staged_open += sys->health(name).epochs_staged_open;
  }
  EXPECT_EQ(staged_open, 2u);

  // Survivors resolve with the coordinator still dead: no decision
  // record anywhere -> presumed abort, stores byte-identical to before
  // the epoch, nothing staged-open.
  const RecoveryStats before = sys->cluster().recovery().stats();
  EXPECT_EQ(sys->cluster().recovery().resolve_staged_epochs(), 2u);
  EXPECT_GE(sys->cluster().recovery().stats().epochs_resolved_abort,
            before.epochs_resolved_abort + 2);
  for (const std::string& name : sys->cluster().node_names()) {
    EXPECT_EQ(sys->health(name).epochs_staged_open, 0u) << name;
  }

  // Heal: the epoch message stayed parked at the dead coordinator's
  // queue; the restart replays it as a fresh 2PC which commits.
  sys->cluster().set_epoch_fault_hook({});
  sys->cluster().restart_node(coord);
  EXPECT_EQ(sys->flush_pending(), 0u);
  for (const std::string& name : sys->cluster().node_names()) {
    EXPECT_EQ(sys->health(name).epochs_staged_open, 0u) << name;
  }
  EXPECT_GE(sys->cluster().stats().epoch_commits, 1u);
  expect_replicas_converged(*sys, files);
  for (const std::string& f : files) {
    EXPECT_TRUE(sys->download_report("bob", f).opened().empty());
    EXPECT_TRUE(sys->download_report("alice", f).all_ok());
  }
}

TEST(RecoveryChaos, CoordinatorKilledAfterDecisionResolvesCommit) {
  auto sys = make_system(Group::test_small(), 3, 3);
  enroll(*sys);
  const std::vector<std::string> files = {"f1", "f2", "f3"};
  upload_all(*sys, files);
  ASSERT_EQ(sys->flush_pending(), 0u);

  // Crash after the write-ahead commit verdict but before any commit
  // applied: the coordinator's decision log (which survives the kill)
  // is the only witness that this epoch must commit.
  const std::string coord = sys->cluster().coordinator();
  std::atomic<bool> fired{false};
  sys->cluster().set_epoch_fault_hook(
      [&](uint64_t, const std::string& phase) {
        if (phase == "decided" && !fired.exchange(true)) {
          sys->cluster().kill_node(coord);
          throw TransportError(TransportError::Kind::kLost,
                               "injected coordinator crash");
        }
      });
  EXPECT_EQ(sys->revoke_attribute("Med", "bob", "Doctor"), 0u);
  ASSERT_TRUE(fired.load());
  size_t staged_open = 0;
  for (const std::string& name : sys->cluster().node_names()) {
    if (name != coord) staged_open += sys->health(name).epochs_staged_open;
  }
  EXPECT_EQ(staged_open, 2u);

  // Rejoin resolves the peers from the recorded verdict (commit), then
  // anti-entropy pulls the re-encrypted bytes back onto the coordinator
  // (whose own staged copy died with it).
  sys->cluster().set_epoch_fault_hook({});
  const RecoveryStats before = sys->cluster().recovery().stats();
  sys->cluster().restart_node(coord);
  const RecoveryStats after = sys->cluster().recovery().stats();
  EXPECT_GE(after.epochs_resolved_commit, before.epochs_resolved_commit + 2);
  for (const std::string& name : sys->cluster().node_names()) {
    EXPECT_EQ(sys->health(name).epochs_staged_open, 0u) << name;
  }
  // The parked epoch message replays as a fresh 2PC over already
  // re-encrypted slots: it stages an empty change set and commits as a
  // no-op, leaving state untouched.
  EXPECT_EQ(sys->flush_pending(), 0u);
  expect_replicas_converged(*sys, files);
  for (const std::string& f : files) {
    EXPECT_TRUE(sys->download_report("bob", f).opened().empty());
    EXPECT_TRUE(sys->download_report("alice", f).all_ok());
  }
}

// ---------------------------------------------- snapshot consistency --

TEST(RecoveryTest, SnapshotNeverTearsVersionFromBytes) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  upload_all(*sys, {"tf"});
  ASSERT_EQ(sys->flush_pending(), 0u);

  Cluster& c = sys->cluster();
  const std::string coord = c.route_for("tf");
  const uint64_t base = c.version_of(coord, "tf");

  // Pre-build K distinct versions of the file (same id, perturbed
  // sealed bytes) so the writer thread needs no client-side crypto.
  constexpr size_t kVersions = 24;
  std::vector<Bytes> wires;
  for (size_t v = 0; v < kVersions; ++v) {
    StoredFile variant = *c.node_store(coord).fetch("tf");
    variant.slots[0].sealed_data[0] ^= static_cast<uint8_t>(v + 1);
    wires.push_back(serialize(sys->group(), variant));
  }
  const Bytes initial = serialize(sys->group(), *c.node_store(coord).fetch("tf"));

  std::atomic<bool> done{false};
  std::atomic<size_t> torn{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const Bytes snap = c.snapshot(coord);
      Reader r(snap);
      const uint32_t count = r.u32();
      for (uint32_t i = 0; i < count; ++i) {
        const std::string id = r.str();
        const uint64_t version = r.u64();
        const Bytes bytes = r.var_bytes();
        if (id != "tf") continue;
        // handle_store assigns base+1, base+2, ... to wires[0], [1], ...
        // under the same mutex hold that stores the bytes; any other
        // pairing is a torn read.
        const Bytes& want =
            version == base ? initial : wires.at(version - base - 1);
        if (bytes != want) torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (const Bytes& wire : wires) c.handle_store(coord, wire);
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(c.version_of(coord, "tf"), base + kVersions);
  sys->flush_pending();
}

// ----------------------------------------------- repair_all fallback --

TEST(RecoveryTest, RepairAllAttemptsFilesWhoseCoordinatorIsDead) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  const std::vector<std::string> files = eight_files();
  upload_all(*sys, files);
  ASSERT_EQ(sys->flush_pending(), 0u);

  // Kill a node that is primary for at least one file: the old
  // repair_all skipped those files outright; now the next alive node in
  // preference order runs the read, whose quorum failure is counted
  // (R=2 majority needs both replicas).
  std::string victim;
  for (const std::string& name : sys->cluster().node_names()) {
    for (const std::string& f : files) {
      if (sys->cluster().route_for(f) == name) {
        victim = name;
        break;
      }
    }
    if (!victim.empty()) break;
  }
  ASSERT_FALSE(victim.empty());
  sys->cluster().kill_node(victim);

  const uint64_t failures_before = sys->cluster().stats().quorum_failures;
  sys->cluster().repair_all();
  EXPECT_GT(sys->cluster().stats().quorum_failures, failures_before);
}

}  // namespace
}  // namespace maabe::cloud
