// Cluster-wide observability (DESIGN.md §16): trace-context propagation
// over the Transport frame, per-node flight recorder, and the
// aggregated status document. The acceptance scenario of ISSUE 9: a
// fault-injected CLUSTER revocation epoch (scripted drops + one replica
// kill) yields exactly one trace tree rooted at the coordinator's
// operation, with every surviving node's spans linked and tagged
// node_id — and the parked epoch's replay after the replica rejoins
// continues the SAME trace.
// Registered under the `observability` ctest label.
#include <gtest/gtest.h>

#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/system.h"
#include "common/errors.h"
#include "common/wire.h"
#include "crypto/sha256.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/slo.h"
#include "telemetry/trace.h"

namespace maabe::cloud {
namespace {

using pairing::Group;
using telemetry::FlightEntry;
using telemetry::FlightRegistry;
using telemetry::SpanRecord;
using telemetry::Tracer;

/// Installs a vector-collecting sink for the scope's lifetime.
class SpanCollector {
 public:
  SpanCollector() {
    Tracer::global().enable(
        [this](const SpanRecord& rec) { records_.push_back(rec); });
  }
  ~SpanCollector() { Tracer::global().disable(); }
  const std::vector<SpanRecord>& records() const { return records_; }

 private:
  std::vector<SpanRecord> records_;
};

std::string attr_of(const SpanRecord& rec, const std::string& key) {
  for (const auto& [k, v] : rec.attrs) {
    if (k == key) return v;
  }
  return "";
}

// -------------------------------------------- frame trace triple -----

Frame traced_frame() {
  Frame f;
  f.from = "node:0";
  f.to = "node:1";
  f.request_id = 9;
  f.seq = 3;
  f.trace_id = 0xDEADBEEFCAFEF00Dull;
  f.parent_span_id = 0x1122334455667788ull;
  f.origin_node = "node:0";
  f.payload = bytes_of("stage epoch 7");
  return f;
}

TEST(FrameTrace, RoundTripPreservesTraceTriple) {
  const Frame f = traced_frame();
  ASSERT_TRUE(f.has_trace());
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.trace_id, f.trace_id);
  EXPECT_EQ(g.parent_span_id, f.parent_span_id);
  EXPECT_EQ(g.origin_node, f.origin_node);
  EXPECT_EQ(g.payload, f.payload);
  EXPECT_TRUE(g.has_trace());
}

TEST(FrameTrace, UntracedFrameStaysUntracedAndSmaller) {
  Frame f = traced_frame();
  f.trace_id = 0;
  f.parent_span_id = 0;
  f.origin_node.clear();
  ASSERT_FALSE(f.has_trace());
  const Bytes wire = encode_frame(f);
  const Frame g = decode_frame(wire);
  EXPECT_FALSE(g.has_trace());
  EXPECT_EQ(g.trace_id, 0u);
  EXPECT_EQ(g.origin_node, "");
  // The triple is genuinely optional on the wire, not zero-filled.
  EXPECT_LT(wire.size(), encode_frame(traced_frame()).size());
}

/// Re-frames `body` with a fresh 4-byte checksum, so decode_frame gets
/// past integrity verification and into structural validation.
Bytes with_checksum(Bytes body) {
  Bytes sum = crypto::Sha256::digest(body);
  body.insert(body.end(), sum.begin(), sum.begin() + 4);
  return body;
}

Writer frame_header(const Frame& f) {
  Writer w;
  w.u8(0x7A);
  w.str(f.from);
  w.str(f.to);
  w.u64(f.request_id);
  w.u64(f.seq);
  return w;
}

TEST(FrameTrace, UnknownFlagBitsAreMalformed) {
  const Frame f = traced_frame();
  Writer w = frame_header(f);
  w.u8(0x02);  // not a defined flag
  w.var_bytes(f.payload);
  try {
    (void)decode_frame(with_checksum(w.take()));
    FAIL() << "unknown flag bits accepted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kMalformed);
  }
}

TEST(FrameTrace, TraceFlagWithNullSpanIdIsMalformed) {
  const Frame f = traced_frame();
  Writer w = frame_header(f);
  w.u8(0x01);                // trace triple present...
  w.u64(f.trace_id);
  w.u64(0);                  // ...but span id 0 means "no span"
  w.str(f.origin_node);
  w.var_bytes(f.payload);
  try {
    (void)decode_frame(with_checksum(w.take()));
    FAIL() << "null propagated span id accepted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kMalformed);
  }
}

// ------------------------------------------ cluster acceptance -------

std::unique_ptr<CloudSystem> make_system(std::shared_ptr<const Group> grp,
                                         size_t nodes, size_t replication) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.replication = replication;
  return std::make_unique<CloudSystem>(grp, "observability",
                                       std::make_unique<LoopbackTransport>(),
                                       RetryPolicy(), cfg);
}

void enroll(CloudSystem& sys) {
  sys.add_authority("Med", {"Doctor"});
  sys.add_owner("hosp");
  sys.publish_authority_keys("Med", "hosp");
  for (const char* uid : {"alice", "bob"}) {
    sys.add_user(uid);
    sys.assign_attributes("Med", uid, {"Doctor"});
    sys.issue_user_key("Med", uid, "hosp");
  }
}

/// Arms the flight recorder for the fixture's lifetime and attaches a
/// per-node dump when the test fails, so a flaky chaos interleaving
/// ships its own post-mortem (ISSUE 9 acceptance).
class ClusterObservability : public ::testing::Test {
 protected:
  void TearDown() override {
    if (HasFailure() && sys_) {
      for (const std::string& name : sys_->cluster().node_names()) {
        std::cerr << sys_->cluster().dump_flight_recorder(name);
      }
    }
  }

  telemetry::ArmedFlightRecorder armed_;
  std::unique_ptr<CloudSystem> sys_;
};

/// Index a record set and return the unique root among `records`,
/// asserting exactly one span has parent 0.
const SpanRecord* single_root(const std::vector<SpanRecord>& records,
                              std::map<uint64_t, const SpanRecord*>* by_id) {
  const SpanRecord* root = nullptr;
  for (const SpanRecord& rec : records) {
    (*by_id)[rec.span_id] = &rec;
    if (rec.parent_id == 0) {
      EXPECT_EQ(root, nullptr)
          << "second root '" << rec.name << "' next to '"
          << (root ? root->name : "") << "'";
      root = &rec;
    }
  }
  return root;
}

TEST_F(ClusterObservability, FaultInjectedClusterEpochYieldsOneTraceTree) {
  auto grp = Group::test_small();
  sys_ = make_system(grp, 3, 2);
  enroll(*sys_);
  for (const char* f : {"f1", "f2", "f3", "f4"}) {
    sys_->upload("hosp", f, {{"a", bytes_of(std::string("rec ") + f), "Doctor@Med"}});
  }

  const std::string coord = sys_->cluster().coordinator();
  ASSERT_EQ(coord, "node:0");
  const std::string survivor = "node:1";
  const std::string victim = "node:2";
  auto& loopback = dynamic_cast<LoopbackTransport&>(sys_->transport());
  loopback.faults().fail_next(coord, survivor, 2);

  // ---- Traced window 1: the epoch against a degraded cluster --------
  std::vector<SpanRecord> records;
  size_t committed = 0;
  {
    SpanCollector sink;
    sys_->cluster().kill_node(victim);
    committed = sys_->revoke_attribute("Med", "bob", "Doctor");
    records = sink.records();
  }
  // The victim cannot stage, so the 2PC aborts everywhere and the epoch
  // delivery stays parked; nothing commits during this call.
  EXPECT_EQ(committed, 0u);
  ASSERT_FALSE(records.empty());

  std::map<uint64_t, const SpanRecord*> by_id;
  const SpanRecord* root = single_root(records, &by_id);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "system.revoke_attribute");

  // ONE trace tree: every span carries the root's trace id and every
  // parent chain terminates at the root.
  for (const SpanRecord& rec : records) {
    EXPECT_EQ(rec.trace_id, root->trace_id) << rec.name;
    const SpanRecord* cur = &rec;
    int hops = 0;
    while (cur->parent_id != 0 && hops < 64) {
      const auto it = by_id.find(cur->parent_id);
      ASSERT_NE(it, by_id.end()) << rec.name << ": dangling parent";
      cur = it->second;
      ++hops;
    }
    EXPECT_EQ(cur->span_id, root->span_id) << rec.name << ": chain misses root";
  }

  // Every surviving node contributed spans, each tagged node_id. The
  // 2PC ran at the coordinator; the survivor's spans joined through the
  // rehydrated wire context.
  std::set<std::string> node_ids;
  std::vector<const SpanRecord*> epoch_2pc;
  size_t scripted = 0;
  for (const SpanRecord& rec : records) {
    const std::string nid = attr_of(rec, "node_id");
    if (!nid.empty()) node_ids.insert(nid);
    if (rec.name == "cluster.epoch_2pc") epoch_2pc.push_back(&rec);
    if (rec.name == "transport.frame" && attr_of(rec, "from") == coord &&
        attr_of(rec, "to") == survivor &&
        attr_of(rec, "outcome") == "scripted_failure") {
      ++scripted;
    }
  }
  // The parked delivery retries, and every retry is a fresh 2PC attempt
  // — all still inside the one trace, all run by the coordinator.
  ASSERT_GE(epoch_2pc.size(), 1u);
  for (const SpanRecord* e : epoch_2pc) {
    EXPECT_EQ(attr_of(*e, "coordinator"), coord);
    EXPECT_EQ(attr_of(*e, "node_id"), coord);
  }
  EXPECT_TRUE(node_ids.count(coord)) << "no span tagged with the coordinator";
  EXPECT_TRUE(node_ids.count(survivor)) << "no span tagged with the survivor";
  EXPECT_EQ(scripted, 2u) << "both scripted drops must appear as frame spans";

  // The flight recorder retained the typed story: scripted faults in
  // the survivor's ring, the abort decision in the coordinator's.
  bool survivor_fault = false;
  for (const FlightEntry& e : FlightRegistry::global().entries(survivor)) {
    survivor_fault |= e.kind == FlightEntry::Kind::kFaultInjected &&
                      e.name == "scripted_failure";
  }
  EXPECT_TRUE(survivor_fault);
  bool coord_abort = false;
  for (const FlightEntry& e : FlightRegistry::global().entries(coord)) {
    coord_abort |= e.kind == FlightEntry::Kind::kEpochDecision && e.name == "abort";
  }
  EXPECT_TRUE(coord_abort);
  EXPECT_NE(sys_->cluster().dump_flight_recorder(coord).find(
                "flight-recorder " + coord),
            std::string::npos);

  // ---- Traced window 2: rejoin + replay continues the SAME trace ----
  std::vector<SpanRecord> replay;
  {
    SpanCollector sink;
    sys_->cluster().restart_node(victim);
    for (int i = 0; i < 20 && sys_->flush_pending() > 0; ++i) {
    }
    replay = sink.records();
  }
  EXPECT_EQ(sys_->health().pending_deliveries, 0u);
  EXPECT_GE(sys_->cluster().stats().epoch_commits, 1u);
  EXPECT_GT(sys_->cluster().total_reencrypted_slots(), 0u);

  // The parked epoch replays under its ORIGINATING context: the replay
  // window's 2PC (and its replay wrapper span) belong to the first
  // window's trace, and no second revocation root ever appears.
  bool replay_wrapper_in_trace = false;
  bool epoch_in_original_trace = false;
  for (const SpanRecord& rec : replay) {
    EXPECT_NE(rec.name, "system.revoke_attribute");
    if (rec.name == "durable.replay" && rec.trace_id == root->trace_id) {
      replay_wrapper_in_trace = true;
    }
    if (rec.name == "cluster.epoch_2pc") {
      EXPECT_EQ(rec.trace_id, root->trace_id)
          << "replayed epoch lost its originating trace";
      epoch_in_original_trace = true;
    }
  }
  EXPECT_TRUE(replay_wrapper_in_trace);
  EXPECT_TRUE(epoch_in_original_trace);

  // The commit verdict reached the rings once the cluster healed.
  bool commit_seen = false;
  for (const FlightEntry& e : FlightRegistry::global().entries(coord)) {
    commit_seen |= e.kind == FlightEntry::Kind::kEpochDecision && e.name == "commit";
  }
  EXPECT_TRUE(commit_seen);
}

TEST_F(ClusterObservability, DedupedRedeliveryIsALeafEventNotASubtree) {
  LoopbackTransport transport{FaultPlan(1234)};
  FaultSpec spec;
  spec.duplicate = 1.0;  // every frame arrives twice
  transport.faults().set_channel("a", "b", spec);
  ReliableLink link(transport);

  SpanCollector sink;
  int applies = 0;
  const Bytes payload = bytes_of("idempotent payload");
  link.send("a", "b", payload, [&](ByteView) { ++applies; });
  EXPECT_EQ(applies, 1);  // second copy dedup'd by request id

  std::map<uint64_t, const SpanRecord*> by_id;
  const SpanRecord* root = single_root(sink.records(), &by_id);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "transport.send");

  const SpanRecord* dup = nullptr;
  for (const SpanRecord& rec : sink.records()) {
    if (rec.name == "transport.dropped_duplicate") {
      ASSERT_EQ(dup, nullptr) << "duplicate suppressed more than once";
      dup = &rec;
    }
  }
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->trace_id, root->trace_id);
  EXPECT_EQ(attr_of(*dup, "node_id"), "b");
  // Leaf, parented on the rehydrated recv span of the redelivery — the
  // duplicate contributes an event, not a second application subtree.
  const auto parent = by_id.find(dup->parent_id);
  ASSERT_NE(parent, by_id.end());
  EXPECT_EQ(parent->second->name, "transport.recv");
}

TEST_F(ClusterObservability, StatusJsonAggregatesClusterHealthAndSlo) {
  auto grp = Group::test_small();
  sys_ = make_system(grp, 3, 2);
  enroll(*sys_);
  sys_->upload("hosp", "f1", {{"a", bytes_of("alpha"), "Doctor@Med"}});

  telemetry::SloPlane plane(telemetry::SloPlane::parse("obs_status_ms=100"));
  plane.observe("obs_status_ms", 5.0, false);
  plane.observe("obs_status_ms", 250.0, false);
  plane.export_gauges();

  sys_->cluster().kill_node("node:2");
  const std::string doc = sys_->status_json();

  // One document: cluster shape, per-node health, queues, SLO gauges.
  EXPECT_NE(doc.find("\"cluster\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"replication\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"coordinator\":\"node:0\""), std::string::npos);
  for (const char* n : {"node:0", "node:1", "node:2"}) {
    EXPECT_NE(doc.find("\"node\":\"" + std::string(n) + "\""), std::string::npos);
  }
  EXPECT_NE(doc.find("\"alive\":false"), std::string::npos);  // the killed node
  EXPECT_NE(doc.find("\"replication_lag\":"), std::string::npos);
  EXPECT_NE(doc.find("\"pending_deliveries\":"), std::string::npos);
  EXPECT_NE(doc.find("\"staged_epochs\":"), std::string::npos);
  // The exported SLO folds into the document as one object per
  // objective with met/burn/sample fields.
  EXPECT_NE(doc.find("\"obs_status_ms\":{"), std::string::npos);
  const size_t slo_at = doc.find("\"obs_status_ms\":{");
  EXPECT_NE(doc.find("\"met\":", slo_at), std::string::npos);
  EXPECT_NE(doc.find("\"burn_long_x1000\":", slo_at), std::string::npos);
  EXPECT_NE(doc.find("\"samples\":2", slo_at), std::string::npos);
}

}  // namespace
}  // namespace maabe::cloud
