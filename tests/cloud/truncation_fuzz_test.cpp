// Deserializer truncation fuzz: every artefact type that crosses a
// channel or rests on disk must reject a truncation at EVERY byte
// boundary, and trailing garbage, with a typed WireError — never a
// crash, and never a silently-successful partial parse (all readers end
// with expect_done()).
#include <gtest/gtest.h>

#include "abe/scheme.h"
#include "abe/serial.h"
#include "baseline/lewko.h"
#include "baseline/lewko_serial.h"
#include "cloud/system.h"
#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::cloud {
namespace {

using lsss::LsssMatrix;
using lsss::parse_policy;
using pairing::Group;

/// Deserializing any strict prefix, and the encoding plus one trailing
/// byte, must throw WireError.
template <typename Deser>
void fuzz_boundaries(const std::string& what, const Bytes& wire, Deser&& deser) {
  ASSERT_FALSE(wire.empty()) << what;
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)deser(ByteView(wire.data(), len)), WireError)
        << what << " truncated to " << len << " of " << wire.size();
  }
  Bytes longer = wire;
  longer.push_back(0x5C);
  EXPECT_THROW((void)deser(longer), WireError) << what << " with trailing garbage";
}

TEST(TruncationFuzz, EveryAbeArtefact) {
  auto grp = Group::test_small();
  crypto::Drbg rng(std::string_view("truncation-fuzz"));

  const abe::UserPublicKey user = abe::ca_register_user(*grp, "alice", rng);
  const abe::OwnerMasterKey mk = abe::owner_gen(*grp, "hosp", rng);
  const abe::OwnerSecretShare share = abe::owner_share(*grp, mk);
  const abe::AuthorityVersionKey vk = abe::aa_setup(*grp, "Med", rng);
  const abe::AuthorityPublicKey apk = abe::aa_public_key(*grp, vk);
  const abe::PublicAttributeKey attr_pk = abe::aa_attribute_key(*grp, vk, "Doctor");
  const abe::UserSecretKey sk = abe::aa_keygen(*grp, vk, share, user, {"Doctor"});

  const LsssMatrix policy = LsssMatrix::from_policy(parse_policy("Doctor@Med"));
  const abe::EncryptionResult enc =
      abe::encrypt(*grp, mk, "ct1", grp->gt_random(rng), policy, {{"Med", apk}},
                   {{attr_pk.attr.qualified(), attr_pk}}, rng);

  const abe::ReKeyResult rekey = abe::aa_rekey(*grp, vk, rng);
  const abe::UpdateKey uk = abe::aa_make_update_key(*grp, vk, rekey.new_vk, share);
  const abe::PublicAttributeKey new_attr_pk =
      abe::apply_update_to_attribute_pk(*grp, attr_pk, uk);
  const abe::UpdateInfo ui = abe::owner_update_info(
      *grp, mk, enc.record, enc.ct, {{attr_pk.attr.qualified(), attr_pk}},
      {{new_attr_pk.attr.qualified(), new_attr_pk}}, "Med");

  const Group& g = *grp;
  fuzz_boundaries("UserPublicKey", abe::serialize(g, user), [&](ByteView b) {
    return abe::deserialize_user_public_key(g, b);
  });
  fuzz_boundaries("OwnerMasterKey", abe::serialize(g, mk), [&](ByteView b) {
    return abe::deserialize_owner_master_key(g, b);
  });
  fuzz_boundaries("OwnerSecretShare", abe::serialize(g, share), [&](ByteView b) {
    return abe::deserialize_owner_secret_share(g, b);
  });
  fuzz_boundaries("AuthorityVersionKey", abe::serialize(g, vk), [&](ByteView b) {
    return abe::deserialize_authority_version_key(g, b);
  });
  fuzz_boundaries("AuthorityPublicKey", abe::serialize(g, apk), [&](ByteView b) {
    return abe::deserialize_authority_public_key(g, b);
  });
  fuzz_boundaries("PublicAttributeKey", abe::serialize(g, attr_pk), [&](ByteView b) {
    return abe::deserialize_public_attribute_key(g, b);
  });
  fuzz_boundaries("UserSecretKey", abe::serialize(g, sk), [&](ByteView b) {
    return abe::deserialize_user_secret_key(g, b);
  });
  fuzz_boundaries("Ciphertext", abe::serialize(g, enc.ct), [&](ByteView b) {
    return abe::deserialize_ciphertext(g, b);
  });
  fuzz_boundaries("EncryptionRecord", abe::serialize(g, enc.record), [&](ByteView b) {
    return abe::deserialize_encryption_record(g, b);
  });
  fuzz_boundaries("UpdateKey", abe::serialize(g, uk), [&](ByteView b) {
    return abe::deserialize_update_key(g, b);
  });
  fuzz_boundaries("UpdateInfo", abe::serialize(g, ui), [&](ByteView b) {
    return abe::deserialize_update_info(g, b);
  });
}

TEST(TruncationFuzz, StoredFile) {
  auto grp = Group::test_small();
  CloudSystem sys(grp, "truncation-fuzz");
  sys.add_authority("Med", {"Doctor"});
  sys.add_owner("hosp");
  sys.publish_authority_keys("Med", "hosp");
  sys.upload("hosp", "f1", {{"a", bytes_of("payload bytes"), "Doctor@Med"}});
  const Bytes wire = serialize(*grp, *sys.server().fetch("f1"));
  fuzz_boundaries("StoredFile", wire,
                  [&](ByteView b) { return deserialize_stored_file(*grp, b); });
}

TEST(TruncationFuzz, LewkoBaselineArtefacts) {
  auto grp = Group::test_small();
  crypto::Drbg rng(std::string_view("truncation-fuzz-lewko"));
  const baseline::LewkoAuthorityKeys auth =
      baseline::lewko_authority_setup(*grp, "Med", {"Doctor"}, rng);
  const baseline::LewkoAttributePublicKey pk =
      baseline::lewko_attribute_pk(*grp, auth, "Doctor");
  baseline::LewkoUserKey key;
  baseline::lewko_keygen(*grp, auth, "alice", {"Doctor"}, &key);
  const LsssMatrix policy = LsssMatrix::from_policy(parse_policy("Doctor@Med"));
  const baseline::LewkoCiphertext ct = baseline::lewko_encrypt(
      *grp, grp->gt_random(rng), policy, {{pk.attr.qualified(), pk}}, rng);

  const Group& g = *grp;
  fuzz_boundaries("LewkoAttributePublicKey", baseline::serialize(g, pk),
                  [&](ByteView b) { return baseline::deserialize_lewko_attribute_pk(g, b); });
  fuzz_boundaries("LewkoUserKey", baseline::serialize(g, key),
                  [&](ByteView b) { return baseline::deserialize_lewko_user_key(g, b); });
  fuzz_boundaries("LewkoCiphertext", baseline::serialize(g, ct),
                  [&](ByteView b) { return baseline::deserialize_lewko_ciphertext(g, b); });
}

}  // namespace
}  // namespace maabe::cloud
