// HashRing placement and the DurableLink/replication wire plumbing the
// cluster is built from (DESIGN.md §13).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cloud/replication.h"
#include "cloud/ring.h"
#include "common/errors.h"

namespace maabe::cloud {
namespace {

std::vector<std::string> four_nodes() {
  return {"node:0", "node:1", "node:2", "node:3"};
}

TEST(HashRingTest, PositionIsDeterministic) {
  EXPECT_EQ(HashRing::position("f1"), HashRing::position("f1"));
  EXPECT_NE(HashRing::position("f1"), HashRing::position("f2"));
}

TEST(HashRingTest, RejectsBadMembership) {
  EXPECT_THROW(HashRing({}, 1), SchemeError);
  EXPECT_THROW(HashRing({"a", ""}, 1), SchemeError);
  EXPECT_THROW(HashRing({"a", "b", "a"}, 1), SchemeError);
}

TEST(HashRingTest, ReplicationIsClamped) {
  EXPECT_EQ(HashRing({"a", "b"}, 0).replication(), 1u);
  EXPECT_EQ(HashRing({"a", "b"}, 9).replication(), 2u);
}

TEST(HashRingTest, PreferenceOrderIsAPermutationOfNodes) {
  const HashRing ring(four_nodes(), 2);
  for (int i = 0; i < 50; ++i) {
    const auto order = ring.preference_order("file-" + std::to_string(i));
    EXPECT_EQ(std::set<std::string>(order.begin(), order.end()).size(), 4u);
    EXPECT_EQ(order.size(), 4u);
  }
}

TEST(HashRingTest, ReplicaSetIsPreferencePrefix) {
  const HashRing ring(four_nodes(), 3);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "file-" + std::to_string(i);
    const auto order = ring.preference_order(key);
    const auto replicas = ring.replicas_for(key);
    ASSERT_EQ(replicas.size(), 3u);
    for (size_t j = 0; j < replicas.size(); ++j) EXPECT_EQ(replicas[j], order[j]);
    EXPECT_EQ(ring.primary_for(key), order.front());
  }
}

TEST(HashRingTest, PlacementIsDeterministic) {
  const HashRing a(four_nodes(), 2);
  const HashRing b(four_nodes(), 2);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "file-" + std::to_string(i);
    EXPECT_EQ(a.replicas_for(key), b.replicas_for(key));
  }
}

TEST(HashRingTest, VirtualNodesBalanceTheKeyspace) {
  const HashRing ring(four_nodes(), 1);
  std::map<std::string, int> primaries;
  const int keys = 4000;
  for (int i = 0; i < keys; ++i) primaries[ring.primary_for("key-" + std::to_string(i))]++;
  // With 64 vnodes per node the largest share stays within a small
  // factor of the 25% mean; a broken hash or walk collapses onto one
  // node and fails this hard.
  for (const std::string& name : four_nodes()) {
    EXPECT_GT(primaries[name], keys / 10) << name << " starved";
    EXPECT_LT(primaries[name], keys / 2) << name << " overloaded";
  }
}

TEST(HashRingTest, AddingANodeMovesOnlyAFractionOfKeys) {
  const HashRing before(four_nodes(), 1);
  auto grown = four_nodes();
  grown.push_back("node:4");
  const HashRing after(grown, 1);
  const int keys = 2000;
  int moved = 0;
  for (int i = 0; i < keys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    if (before.primary_for(key) != after.primary_for(key)) ++moved;
  }
  // Consistent hashing: ~1/5 of the keyspace should move to the new
  // node; full rehashing would move ~4/5.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, keys / 2);
}

// ------------------------------------------------------ wire formats --

TEST(ReplicationWireTest, OpRoundTrip) {
  ReplicationOp op;
  op.file_id = "records/f 1";
  op.version = 42;
  op.hash = bytes_of("0123456789abcdef0123456789abcdef");
  op.wire = bytes_of("serialized stored file");
  const ReplicationOp back = decode_replication_op(encode_replication_op(op));
  EXPECT_EQ(back.file_id, op.file_id);
  EXPECT_EQ(back.version, op.version);
  EXPECT_EQ(back.hash, op.hash);
  EXPECT_EQ(back.wire, op.wire);
}

TEST(ReplicationWireTest, FetchReplyRoundTrip) {
  FetchReply miss;
  const FetchReply miss_back = decode_fetch_reply(encode_fetch_reply(miss));
  EXPECT_FALSE(miss_back.found);
  EXPECT_EQ(miss_back.version, 0u);

  FetchReply hit;
  hit.found = true;
  hit.version = 7;
  hit.hash = bytes_of("hash");
  hit.wire = bytes_of("bytes");
  const FetchReply hit_back = decode_fetch_reply(encode_fetch_reply(hit));
  EXPECT_TRUE(hit_back.found);
  EXPECT_EQ(hit_back.version, 7u);
  EXPECT_EQ(hit_back.hash, hit.hash);
  EXPECT_EQ(hit_back.wire, hit.wire);
}

TEST(ReplicationWireTest, MalformedInputIsTyped) {
  EXPECT_THROW(decode_replication_op(bytes_of("junk")), WireError);
  EXPECT_THROW(decode_fetch_reply(bytes_of("junk")), WireError);
  // Swapped tags must not cross-decode.
  FetchReply reply;
  EXPECT_THROW(decode_replication_op(encode_fetch_reply(reply)), WireError);
}

// ------------------------------------------------------- DurableLink --

FaultSpec down_channel() {
  FaultSpec spec;
  spec.drop = 1.0;
  return spec;
}

TEST(DurableLinkTest, ParksOnFailureAndReplaysInFifoOrder) {
  LoopbackTransport t{FaultPlan(1)};  // seeded: specs apply (drop=1 is sure)
  t.faults().set_channel("a", "b", down_channel());
  ReliableLink link(t);
  DurableLink durable(link);
  std::vector<int> order;

  EXPECT_FALSE(durable.send_or_park("a", "b", bytes_of("1"),
                                    [&](ByteView) { order.push_back(1); }, "first"));
  EXPECT_FALSE(durable.send_or_park("a", "b", bytes_of("2"),
                                    [&](ByteView) { order.push_back(2); }, "second"));
  EXPECT_EQ(durable.pending_for("b"), 2u);
  EXPECT_EQ(durable.pending_labels("b"),
            (std::vector<std::string>{"first", "second"}));
  // Other destinations are unaffected by b's outage.
  EXPECT_TRUE(durable.send_or_park("a", "c", bytes_of("3"),
                                   [&](ByteView) { order.push_back(3); }, "other"));
  EXPECT_EQ(durable.pending_count(), 2u);
  EXPECT_EQ(durable.pending_by_destination(),
            (std::map<std::string, size_t>{{"b", 2}}));

  t.faults().set_channel("a", "b", FaultSpec());
  EXPECT_EQ(durable.flush_all(), 0u);
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
  EXPECT_EQ(durable.pending_for("b"), 0u);
}

TEST(DurableLinkTest, FlushStopsAtFirstFailureToPreserveOrder) {
  LoopbackTransport t{FaultPlan(1)};
  t.faults().set_channel("a", "b", down_channel());
  ReliableLink link(t);
  DurableLink durable(link);
  std::vector<int> order;
  durable.send_or_park("a", "b", bytes_of("1"), [&](ByteView) { order.push_back(1); },
                       "first");
  durable.send_or_park("a", "b", bytes_of("2"), [&](ByteView) { order.push_back(2); },
                       "second");

  // Heal the channel but script the next send (the head replay) to fail:
  // the queue must stop there rather than deliver "second" first.
  t.faults().set_channel("a", "b", FaultSpec());
  t.faults().fail_next("a", "b", link.policy().max_attempts);
  EXPECT_EQ(durable.flush_all(), 2u);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(durable.flush_all(), 0u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(DurableLinkTest, LaterSendsQueueBehindParkedWork) {
  LoopbackTransport t{FaultPlan(1)};
  t.faults().set_channel("a", "b", down_channel());
  ReliableLink link(t);
  DurableLink durable(link);
  std::vector<int> order;
  durable.send_or_park("a", "b", bytes_of("1"), [&](ByteView) { order.push_back(1); },
                       "first");
  // Channel heals, but a send behind a non-empty queue must not jump it:
  // send_or_park flushes first, so both deliver — in order.
  t.faults().set_channel("a", "b", FaultSpec());
  EXPECT_TRUE(durable.send_or_park("a", "b", bytes_of("2"),
                                   [&](ByteView) { order.push_back(2); }, "second"));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(durable.pending_count(), 0u);
}

}  // namespace
}  // namespace maabe::cloud
