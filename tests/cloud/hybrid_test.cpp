#include "cloud/hybrid.h"

#include <gtest/gtest.h>

#include "abe/scheme.h"
#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::cloud {
namespace {

using pairing::Group;
using pairing::GT;

TEST(Hybrid, ContentKeyDerivationDeterministic) {
  auto grp = Group::test_small();
  crypto::Drbg rng(std::string_view("hybrid"));
  const GT seed = grp->gt_random(rng);
  EXPECT_EQ(content_key_from_gt(seed), content_key_from_gt(seed));
  EXPECT_EQ(content_key_from_gt(seed).size(), crypto::kContentKeySize);
  const GT other = grp->gt_random(rng);
  EXPECT_NE(content_key_from_gt(seed), content_key_from_gt(other));
}

TEST(Hybrid, SlotIds) {
  EXPECT_EQ(slot_ct_id("file-1", "billing"), "file-1/billing");
  EXPECT_NE(slot_aad("f", "a"), slot_aad("f", "b"));
  EXPECT_NE(slot_aad("f1", "a"), slot_aad("f2", "a"));
}

TEST(Hybrid, StoredFileRoundTrip) {
  auto grp = Group::test_small();
  crypto::Drbg rng(std::string_view("hybrid-file"));

  // Build a minimal real slot.
  const auto mk = abe::owner_gen(*grp, "owner", rng);
  const auto vk = abe::aa_setup(*grp, "Med", rng);
  std::map<std::string, abe::AuthorityPublicKey> apks{{"Med", abe::aa_public_key(*grp, vk)}};
  std::map<std::string, abe::PublicAttributeKey> attr_pks;
  const auto pk = abe::aa_attribute_key(*grp, vk, "Doctor");
  attr_pks.emplace("Doctor@Med", pk);

  const GT seed = grp->gt_random(rng);
  const auto policy = lsss::LsssMatrix::from_policy(lsss::parse_policy("Doctor@Med"));
  auto enc = abe::encrypt(*grp, mk, "f/x", seed, policy, apks, attr_pks, rng);

  StoredFile file;
  file.file_id = "f";
  file.owner_id = "owner";
  SealedSlot slot;
  slot.component_name = "x";
  slot.key_ct = enc.ct;
  slot.sealed_data = crypto::seal(content_key_from_gt(seed), bytes_of("payload"),
                                  slot_aad("f", "x"), rng);
  file.slots.push_back(slot);

  const Bytes wire = serialize(*grp, file);
  const StoredFile back = deserialize_stored_file(*grp, wire);
  EXPECT_EQ(back.file_id, "f");
  EXPECT_EQ(back.owner_id, "owner");
  ASSERT_EQ(back.slots.size(), 1u);
  EXPECT_EQ(back.slots[0].component_name, "x");
  EXPECT_EQ(back.slots[0].sealed_data, slot.sealed_data);
  EXPECT_EQ(back.slots[0].key_ct.c, enc.ct.c);

  // Owner mismatch between file and slot is rejected.
  StoredFile bad = file;
  bad.owner_id = "other";
  EXPECT_THROW(deserialize_stored_file(*grp, serialize(*grp, bad)), WireError);
}

}  // namespace
}  // namespace maabe::cloud
