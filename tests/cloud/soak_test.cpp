// Scale / soak test: a larger deployment driven through many rounds of
// uploads, downloads and revocations, with an independently maintained
// "ground truth" access matrix checked after every mutation.
#include <gtest/gtest.h>

#include "cloud/system.h"
#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

TEST(Soak, RandomizedDeploymentStaysConsistent) {
  CloudSystem sys(Group::test_small(), "soak");
  crypto::Drbg rng(std::string_view("soak-driver"));

  // 3 authorities x 3 attributes.
  const std::vector<std::string> aids = {"A0", "A1", "A2"};
  const std::vector<std::string> names = {"x", "y", "z"};
  for (const auto& aid : aids) {
    sys.add_authority(aid, {names.begin(), names.end()});
  }
  sys.add_owner("owner");
  for (const auto& aid : aids) sys.publish_authority_keys(aid, "owner");

  // 6 users with pseudo-random attribute assignments; every user gets a
  // key from every authority (possibly empty) so cross-authority ORs
  // remain decryptable.
  struct UserState {
    std::set<lsss::Attribute> attrs;
  };
  std::map<std::string, UserState> truth;
  for (int u = 0; u < 6; ++u) {
    const std::string uid = "u" + std::to_string(u);
    sys.add_user(uid);
    for (const auto& aid : aids) {
      std::set<std::string> grant;
      for (const auto& name : names) {
        if (rng.bytes(1)[0] & 1) {
          grant.insert(name);
          truth[uid].attrs.insert({name, aid});
        }
      }
      if (!grant.empty()) sys.assign_attributes(aid, uid, grant);
      sys.issue_user_key(aid, uid, "owner");
    }
  }

  // A pool of policies of varying shape.
  const std::vector<std::string> policies = {
      "x@A0",
      "x@A0 AND y@A1",
      "(x@A0 AND y@A1) OR z@A2",
      "2of(x@A0, y@A1, z@A2)",
      "x@A0 AND (y@A0 OR y@A1) AND z@A2",
  };
  std::vector<std::pair<std::string, lsss::PolicyPtr>> files;
  for (size_t i = 0; i < policies.size(); ++i) {
    const std::string fid = "file" + std::to_string(i);
    sys.upload("owner", fid,
               {{"c", bytes_of("payload " + std::to_string(i)), policies[i]}});
    files.emplace_back(fid, lsss::parse_policy(policies[i]));
  }

  const auto check_everything = [&] {
    for (const auto& [fid, ast] : files) {
      for (const auto& [uid, state] : truth) {
        const bool expect = ast->satisfied_by(state.attrs);
        const auto view = sys.download(uid, fid);
        ASSERT_EQ(view.contains("c"), expect)
            << "user " << uid << " file " << fid << " policy " << ast->to_string();
      }
    }
  };
  check_everything();

  // Rounds of revocations interleaved with re-checks and new uploads.
  int revocations = 0;
  for (int round = 0; round < 6; ++round) {
    // Pick a user+attribute that is actually assigned.
    const std::string uid = "u" + std::to_string(rng.bytes(1)[0] % 6);
    auto& attrs = truth[uid].attrs;
    if (attrs.empty()) continue;
    auto it = attrs.begin();
    std::advance(it, rng.bytes(1)[0] % attrs.size());
    const lsss::Attribute victim = *it;
    attrs.erase(it);
    sys.revoke_attribute(victim.aid, uid, victim.name);
    ++revocations;
    check_everything();
  }
  EXPECT_GT(revocations, 0);

  // Late joiner reads exactly what its attributes allow, including
  // multiply-re-encrypted old files.
  sys.add_user("late");
  truth["late"] = {};
  for (const auto& aid : aids) {
    sys.assign_attributes(aid, "late", {"x", "y", "z"});
    sys.issue_user_key(aid, "late", "owner");
    for (const auto& name : names) truth["late"].attrs.insert({name, aid});
  }
  check_everything();
}

}  // namespace
}  // namespace maabe::cloud
