// End-to-end integration tests of the full access-control framework:
// the paper's Fig. 1 workflow driven through CloudSystem.
#include "cloud/system.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

// The paper's motivating scenario: medical data shared across a medical
// organization and a clinical-trial administrator.
class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : sys(Group::test_small(), "system-test") {
    sys.add_authority("MedOrg", {"Doctor", "Nurse", "Pharmacist"});
    sys.add_authority("TrialAdmin", {"Researcher", "Monitor"});

    sys.add_owner("hospital");
    sys.publish_authority_keys("MedOrg", "hospital");
    sys.publish_authority_keys("TrialAdmin", "hospital");

    sys.add_user("alice");  // doctor + researcher
    sys.assign_attributes("MedOrg", "alice", {"Doctor"});
    sys.assign_attributes("TrialAdmin", "alice", {"Researcher"});
    sys.issue_user_key("MedOrg", "alice", "hospital");
    sys.issue_user_key("TrialAdmin", "alice", "hospital");

    sys.add_user("bob");  // nurse only
    sys.assign_attributes("MedOrg", "bob", {"Nurse"});
    sys.issue_user_key("MedOrg", "bob", "hospital");
    sys.issue_user_key("TrialAdmin", "bob", "hospital");  // empty assignment
  }

  void upload_patient_record() {
    sys.upload("hospital", "patient-42",
               {{"diagnosis", bytes_of("stage-1 hypertension"),
                 "Doctor@MedOrg AND Researcher@TrialAdmin"},
                {"vitals", bytes_of("bp=140/90 hr=72"),
                 "Doctor@MedOrg OR Nurse@MedOrg"},
                {"billing", bytes_of("invoice #99: $1200"),
                 "Pharmacist@MedOrg"}});
  }

  CloudSystem sys;
};

TEST_F(SystemTest, DifferentUsersGetDifferentGranularity) {
  upload_patient_record();

  const auto alice_view = sys.download("alice", "patient-42");
  ASSERT_EQ(alice_view.size(), 2u);
  EXPECT_EQ(string_of(alice_view.at("diagnosis")), "stage-1 hypertension");
  EXPECT_EQ(string_of(alice_view.at("vitals")), "bp=140/90 hr=72");
  EXPECT_FALSE(alice_view.contains("billing"));

  const auto bob_view = sys.download("bob", "patient-42");
  ASSERT_EQ(bob_view.size(), 1u);
  EXPECT_EQ(string_of(bob_view.at("vitals")), "bp=140/90 hr=72");
}

TEST_F(SystemTest, UnknownEntitiesRejected) {
  EXPECT_THROW(sys.download("mallory", "x"), SchemeError);
  EXPECT_THROW(sys.upload("nobody", "f", {}), SchemeError);
  EXPECT_THROW(sys.assign_attributes("NoAA", "alice", {"X"}), SchemeError);
  EXPECT_THROW(sys.assign_attributes("MedOrg", "ghost", {"Doctor"}), SchemeError);
  EXPECT_THROW(sys.issue_user_key("MedOrg", "alice", "no-owner"), SchemeError);
  upload_patient_record();
  EXPECT_THROW(sys.download("alice", "missing-file"), SchemeError);
}

TEST_F(SystemTest, DuplicateEnrollmentRejected) {
  EXPECT_THROW(sys.add_authority("MedOrg", {}), SchemeError);
  EXPECT_THROW(sys.add_user("alice"), SchemeError);
  EXPECT_THROW(sys.add_owner("hospital"), SchemeError);
}

TEST_F(SystemTest, AttributeOutsideUniverseRejected) {
  EXPECT_THROW(sys.assign_attributes("MedOrg", "alice", {"Astronaut"}), SchemeError);
}

TEST_F(SystemTest, RevocationEndToEnd) {
  upload_patient_record();
  ASSERT_EQ(sys.download("alice", "patient-42").size(), 2u);

  // Revoke Doctor from alice at MedOrg.
  const size_t reencrypted = sys.revoke_attribute("MedOrg", "alice", "Doctor");
  // All three components involve MedOrg (diagnosis, vitals, billing),
  // so all three key-ciphertexts get re-encrypted.
  EXPECT_EQ(reencrypted, 3u);
  EXPECT_EQ(sys.authority("MedOrg").version(), 2u);

  // Alice lost Doctor: no more diagnosis, no more vitals via Doctor —
  // and she is not a nurse, so vitals is gone too.
  const auto alice_view = sys.download("alice", "patient-42");
  EXPECT_TRUE(alice_view.empty());

  // Bob (non-revoked) still reads vitals after his key update.
  const auto bob_view = sys.download("bob", "patient-42");
  ASSERT_EQ(bob_view.size(), 1u);
  EXPECT_EQ(string_of(bob_view.at("vitals")), "bp=140/90 hr=72");
}

TEST_F(SystemTest, RevocationDoesNotAffectOtherAuthorities) {
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "bob", "Nurse");
  // Alice keeps full access (her MedOrg key was updated, not revoked).
  const auto alice_view = sys.download("alice", "patient-42");
  EXPECT_EQ(alice_view.size(), 2u);
  // Bob lost everything.
  EXPECT_TRUE(sys.download("bob", "patient-42").empty());
}

TEST_F(SystemTest, NewUserAfterRevocationReadsOldData) {
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "bob", "Nurse");

  sys.add_user("carol");
  sys.assign_attributes("MedOrg", "carol", {"Nurse"});
  sys.issue_user_key("MedOrg", "carol", "hospital");
  const auto carol_view = sys.download("carol", "patient-42");
  ASSERT_EQ(carol_view.size(), 1u);
  EXPECT_EQ(string_of(carol_view.at("vitals")), "bp=140/90 hr=72");
}

TEST_F(SystemTest, UploadsAfterRevocationUseNewVersion) {
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "bob", "Nurse");
  // Owner's cached keys advanced to version 2; new uploads work and
  // non-revoked users can read them.
  sys.upload("hospital", "patient-43",
             {{"vitals", bytes_of("bp=120/80"), "Doctor@MedOrg OR Nurse@MedOrg"}});
  const auto alice_view = sys.download("alice", "patient-43");
  ASSERT_EQ(alice_view.size(), 1u);
  EXPECT_TRUE(sys.download("bob", "patient-43").empty());
}

TEST_F(SystemTest, SequentialRevocationsAcrossAuthorities) {
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "alice", "Doctor");
  sys.revoke_attribute("TrialAdmin", "alice", "Researcher");
  EXPECT_EQ(sys.authority("MedOrg").version(), 2u);
  EXPECT_EQ(sys.authority("TrialAdmin").version(), 2u);
  EXPECT_TRUE(sys.download("alice", "patient-42").empty());
  EXPECT_EQ(sys.download("bob", "patient-42").size(), 1u);
}

TEST_F(SystemTest, RevokeUnheldAttributeRejected) {
  EXPECT_THROW(sys.revoke_attribute("MedOrg", "alice", "Nurse"), SchemeError);
  EXPECT_THROW(sys.revoke_attribute("MedOrg", "bob", "Doctor"), SchemeError);
}

TEST_F(SystemTest, MultipleOwnersIsolated) {
  sys.add_owner("clinic");
  sys.publish_authority_keys("MedOrg", "clinic");
  sys.issue_user_key("MedOrg", "bob", "clinic");

  sys.upload("clinic", "clinic-file",
             {{"note", bytes_of("clinic note"), "Nurse@MedOrg"}});
  upload_patient_record();

  // Bob reads both owners' nurse-visible data with per-owner keys.
  EXPECT_EQ(sys.download("bob", "clinic-file").size(), 1u);
  EXPECT_EQ(sys.download("bob", "patient-42").size(), 1u);

  // Alice has no key for owner "clinic" at all.
  EXPECT_TRUE(sys.download("alice", "clinic-file").empty());

  // Revocation at one owner's world does not break the other owner.
  sys.revoke_attribute("MedOrg", "alice", "Doctor");
  EXPECT_EQ(sys.download("bob", "clinic-file").size(), 1u);
}

TEST_F(SystemTest, TwoRevocationsAtSameAuthority) {
  // Second version bump at the SAME authority with stored files present:
  // the owner's UpdateInfo machinery must chain correctly (v1->v2->v3).
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "alice", "Doctor");
  sys.revoke_attribute("MedOrg", "bob", "Nurse");
  EXPECT_EQ(sys.authority("MedOrg").version(), 3u);
  // Both revoked users lost their MedOrg access.
  EXPECT_TRUE(sys.download("alice", "patient-42").empty());
  EXPECT_TRUE(sys.download("bob", "patient-42").empty());
  // A fresh nurse joining at version 3 reads the twice-re-encrypted file.
  sys.add_user("erin");
  sys.assign_attributes("MedOrg", "erin", {"Nurse"});
  sys.issue_user_key("MedOrg", "erin", "hospital");
  const auto erin_view = sys.download("erin", "patient-42");
  ASSERT_EQ(erin_view.size(), 1u);
  EXPECT_EQ(string_of(erin_view.at("vitals")), "bp=140/90 hr=72");
}

TEST_F(SystemTest, UserLevelRevocation) {
  upload_patient_record();
  // Give alice a second MedOrg attribute so user-level revocation
  // differs from single-attribute revocation.
  sys.assign_attributes("MedOrg", "alice", {"Nurse"});
  sys.issue_user_key("MedOrg", "alice", "hospital");
  ASSERT_EQ(sys.download("alice", "patient-42").size(), 2u);

  const size_t reencrypted = sys.revoke_user("MedOrg", "alice");
  EXPECT_EQ(reencrypted, 3u);
  EXPECT_EQ(sys.authority("MedOrg").version(), 2u);  // single bump
  EXPECT_TRUE(sys.authority("MedOrg").assignment("alice").empty());

  // Alice lost Doctor AND Nurse in one shot; bob unaffected.
  EXPECT_TRUE(sys.download("alice", "patient-42").empty());
  EXPECT_EQ(sys.download("bob", "patient-42").size(), 1u);

  // Revoking a user with nothing assigned is an error.
  EXPECT_THROW(sys.revoke_user("MedOrg", "alice"), SchemeError);
  EXPECT_THROW(sys.revoke_user("TrialAdmin", "bob"), SchemeError);
}

TEST_F(SystemTest, MeterTracksChannels) {
  upload_patient_record();
  sys.download("alice", "patient-42");
  const ChannelMeter& meter = sys.meter();
  EXPECT_GT(meter.sent("aa:MedOrg", "user:alice"), 0u);   // secret keys
  EXPECT_GT(meter.sent("aa:MedOrg", "owner:hospital"), 0u);  // public keys
  EXPECT_GT(meter.sent("owner:hospital", "server"), 0u);  // upload
  EXPECT_GT(meter.sent("server", "user:alice"), 0u);      // download
  EXPECT_EQ(meter.sent("server", "user:bob"), 0u);
}

TEST_F(SystemTest, StorageReportShape) {
  upload_patient_record();
  const auto report = sys.storage_report();
  // AA storage is exactly one exponent — the paper's headline claim.
  EXPECT_EQ(report.per_entity.at("aa:MedOrg"), sys.group().zr_size());
  EXPECT_EQ(report.per_entity.at("aa:TrialAdmin"), sys.group().zr_size());
  EXPECT_GT(report.per_entity.at("owner:hospital"), 2 * sys.group().zr_size());
  EXPECT_GT(report.per_entity.at("user:alice"), 0u);
  EXPECT_GT(report.per_entity.at("server"), 0u);
}

TEST_F(SystemTest, LateAuthorityGetsOwnerShares) {
  // An authority added after owners exist still issues working keys.
  sys.add_authority("Gov", {"Auditor"});
  sys.publish_authority_keys("Gov", "hospital");
  sys.add_user("dave");
  sys.assign_attributes("Gov", "dave", {"Auditor"});
  sys.issue_user_key("Gov", "dave", "hospital");
  sys.upload("hospital", "audit-log", {{"log", bytes_of("entries"), "Auditor@Gov"}});
  EXPECT_EQ(sys.download("dave", "audit-log").size(), 1u);
}

}  // namespace
}  // namespace maabe::cloud
