// End-to-end integration tests of the full access-control framework:
// the paper's Fig. 1 workflow driven through CloudSystem.
#include "cloud/system.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/errors.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

// The paper's motivating scenario: medical data shared across a medical
// organization and a clinical-trial administrator.
class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : sys(Group::test_small(), "system-test") {
    sys.add_authority("MedOrg", {"Doctor", "Nurse", "Pharmacist"});
    sys.add_authority("TrialAdmin", {"Researcher", "Monitor"});

    sys.add_owner("hospital");
    sys.publish_authority_keys("MedOrg", "hospital");
    sys.publish_authority_keys("TrialAdmin", "hospital");

    sys.add_user("alice");  // doctor + researcher
    sys.assign_attributes("MedOrg", "alice", {"Doctor"});
    sys.assign_attributes("TrialAdmin", "alice", {"Researcher"});
    sys.issue_user_key("MedOrg", "alice", "hospital");
    sys.issue_user_key("TrialAdmin", "alice", "hospital");

    sys.add_user("bob");  // nurse only
    sys.assign_attributes("MedOrg", "bob", {"Nurse"});
    sys.issue_user_key("MedOrg", "bob", "hospital");
    sys.issue_user_key("TrialAdmin", "bob", "hospital");  // empty assignment
  }

  void upload_patient_record() {
    sys.upload("hospital", "patient-42",
               {{"diagnosis", bytes_of("stage-1 hypertension"),
                 "Doctor@MedOrg AND Researcher@TrialAdmin"},
                {"vitals", bytes_of("bp=140/90 hr=72"),
                 "Doctor@MedOrg OR Nurse@MedOrg"},
                {"billing", bytes_of("invoice #99: $1200"),
                 "Pharmacist@MedOrg"}});
  }

  CloudSystem sys;
};

TEST_F(SystemTest, DifferentUsersGetDifferentGranularity) {
  upload_patient_record();

  const auto alice_view = sys.download("alice", "patient-42");
  ASSERT_EQ(alice_view.size(), 2u);
  EXPECT_EQ(string_of(alice_view.at("diagnosis")), "stage-1 hypertension");
  EXPECT_EQ(string_of(alice_view.at("vitals")), "bp=140/90 hr=72");
  EXPECT_FALSE(alice_view.contains("billing"));

  const auto bob_view = sys.download("bob", "patient-42");
  ASSERT_EQ(bob_view.size(), 1u);
  EXPECT_EQ(string_of(bob_view.at("vitals")), "bp=140/90 hr=72");
}

TEST_F(SystemTest, UnknownEntitiesRejected) {
  EXPECT_THROW(sys.download("mallory", "x"), SchemeError);
  EXPECT_THROW(sys.upload("nobody", "f", {}), SchemeError);
  EXPECT_THROW(sys.assign_attributes("NoAA", "alice", {"X"}), SchemeError);
  EXPECT_THROW(sys.assign_attributes("MedOrg", "ghost", {"Doctor"}), SchemeError);
  EXPECT_THROW(sys.issue_user_key("MedOrg", "alice", "no-owner"), SchemeError);
  upload_patient_record();
  EXPECT_THROW(sys.download("alice", "missing-file"), SchemeError);
}

TEST_F(SystemTest, DuplicateEnrollmentRejected) {
  EXPECT_THROW(sys.add_authority("MedOrg", {}), SchemeError);
  EXPECT_THROW(sys.add_user("alice"), SchemeError);
  EXPECT_THROW(sys.add_owner("hospital"), SchemeError);
}

TEST_F(SystemTest, AttributeOutsideUniverseRejected) {
  EXPECT_THROW(sys.assign_attributes("MedOrg", "alice", {"Astronaut"}), SchemeError);
}

TEST_F(SystemTest, RevocationEndToEnd) {
  upload_patient_record();
  ASSERT_EQ(sys.download("alice", "patient-42").size(), 2u);

  // Revoke Doctor from alice at MedOrg.
  const size_t reencrypted = sys.revoke_attribute("MedOrg", "alice", "Doctor");
  // All three components involve MedOrg (diagnosis, vitals, billing),
  // so all three key-ciphertexts get re-encrypted.
  EXPECT_EQ(reencrypted, 3u);
  EXPECT_EQ(sys.authority("MedOrg").version(), 2u);

  // Alice lost Doctor: no more diagnosis, no more vitals via Doctor —
  // and she is not a nurse, so vitals is gone too.
  const auto alice_view = sys.download("alice", "patient-42");
  EXPECT_TRUE(alice_view.empty());

  // Bob (non-revoked) still reads vitals after his key update.
  const auto bob_view = sys.download("bob", "patient-42");
  ASSERT_EQ(bob_view.size(), 1u);
  EXPECT_EQ(string_of(bob_view.at("vitals")), "bp=140/90 hr=72");
}

TEST_F(SystemTest, RevocationDoesNotAffectOtherAuthorities) {
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "bob", "Nurse");
  // Alice keeps full access (her MedOrg key was updated, not revoked).
  const auto alice_view = sys.download("alice", "patient-42");
  EXPECT_EQ(alice_view.size(), 2u);
  // Bob lost everything.
  EXPECT_TRUE(sys.download("bob", "patient-42").empty());
}

TEST_F(SystemTest, NewUserAfterRevocationReadsOldData) {
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "bob", "Nurse");

  sys.add_user("carol");
  sys.assign_attributes("MedOrg", "carol", {"Nurse"});
  sys.issue_user_key("MedOrg", "carol", "hospital");
  const auto carol_view = sys.download("carol", "patient-42");
  ASSERT_EQ(carol_view.size(), 1u);
  EXPECT_EQ(string_of(carol_view.at("vitals")), "bp=140/90 hr=72");
}

TEST_F(SystemTest, UploadsAfterRevocationUseNewVersion) {
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "bob", "Nurse");
  // Owner's cached keys advanced to version 2; new uploads work and
  // non-revoked users can read them.
  sys.upload("hospital", "patient-43",
             {{"vitals", bytes_of("bp=120/80"), "Doctor@MedOrg OR Nurse@MedOrg"}});
  const auto alice_view = sys.download("alice", "patient-43");
  ASSERT_EQ(alice_view.size(), 1u);
  EXPECT_TRUE(sys.download("bob", "patient-43").empty());
}

TEST_F(SystemTest, SequentialRevocationsAcrossAuthorities) {
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "alice", "Doctor");
  sys.revoke_attribute("TrialAdmin", "alice", "Researcher");
  EXPECT_EQ(sys.authority("MedOrg").version(), 2u);
  EXPECT_EQ(sys.authority("TrialAdmin").version(), 2u);
  EXPECT_TRUE(sys.download("alice", "patient-42").empty());
  EXPECT_EQ(sys.download("bob", "patient-42").size(), 1u);
}

TEST_F(SystemTest, RevokeUnheldAttributeRejected) {
  EXPECT_THROW(sys.revoke_attribute("MedOrg", "alice", "Nurse"), SchemeError);
  EXPECT_THROW(sys.revoke_attribute("MedOrg", "bob", "Doctor"), SchemeError);
}

TEST_F(SystemTest, MultipleOwnersIsolated) {
  sys.add_owner("clinic");
  sys.publish_authority_keys("MedOrg", "clinic");
  sys.issue_user_key("MedOrg", "bob", "clinic");

  sys.upload("clinic", "clinic-file",
             {{"note", bytes_of("clinic note"), "Nurse@MedOrg"}});
  upload_patient_record();

  // Bob reads both owners' nurse-visible data with per-owner keys.
  EXPECT_EQ(sys.download("bob", "clinic-file").size(), 1u);
  EXPECT_EQ(sys.download("bob", "patient-42").size(), 1u);

  // Alice has no key for owner "clinic" at all.
  EXPECT_TRUE(sys.download("alice", "clinic-file").empty());

  // Revocation at one owner's world does not break the other owner.
  sys.revoke_attribute("MedOrg", "alice", "Doctor");
  EXPECT_EQ(sys.download("bob", "clinic-file").size(), 1u);
}

TEST_F(SystemTest, TwoRevocationsAtSameAuthority) {
  // Second version bump at the SAME authority with stored files present:
  // the owner's UpdateInfo machinery must chain correctly (v1->v2->v3).
  upload_patient_record();
  sys.revoke_attribute("MedOrg", "alice", "Doctor");
  sys.revoke_attribute("MedOrg", "bob", "Nurse");
  EXPECT_EQ(sys.authority("MedOrg").version(), 3u);
  // Both revoked users lost their MedOrg access.
  EXPECT_TRUE(sys.download("alice", "patient-42").empty());
  EXPECT_TRUE(sys.download("bob", "patient-42").empty());
  // A fresh nurse joining at version 3 reads the twice-re-encrypted file.
  sys.add_user("erin");
  sys.assign_attributes("MedOrg", "erin", {"Nurse"});
  sys.issue_user_key("MedOrg", "erin", "hospital");
  const auto erin_view = sys.download("erin", "patient-42");
  ASSERT_EQ(erin_view.size(), 1u);
  EXPECT_EQ(string_of(erin_view.at("vitals")), "bp=140/90 hr=72");
}

TEST_F(SystemTest, UserLevelRevocation) {
  upload_patient_record();
  // Give alice a second MedOrg attribute so user-level revocation
  // differs from single-attribute revocation.
  sys.assign_attributes("MedOrg", "alice", {"Nurse"});
  sys.issue_user_key("MedOrg", "alice", "hospital");
  ASSERT_EQ(sys.download("alice", "patient-42").size(), 2u);

  const size_t reencrypted = sys.revoke_user("MedOrg", "alice");
  EXPECT_EQ(reencrypted, 3u);
  EXPECT_EQ(sys.authority("MedOrg").version(), 2u);  // single bump
  EXPECT_TRUE(sys.authority("MedOrg").assignment("alice").empty());

  // Alice lost Doctor AND Nurse in one shot; bob unaffected.
  EXPECT_TRUE(sys.download("alice", "patient-42").empty());
  EXPECT_EQ(sys.download("bob", "patient-42").size(), 1u);

  // Revoking a user with nothing assigned is an error.
  EXPECT_THROW(sys.revoke_user("MedOrg", "alice"), SchemeError);
  EXPECT_THROW(sys.revoke_user("TrialAdmin", "bob"), SchemeError);
}

TEST_F(SystemTest, MeterTracksChannels) {
  upload_patient_record();
  sys.download("alice", "patient-42");
  const ChannelMeter& meter = sys.meter();
  EXPECT_GT(meter.sent("aa:MedOrg", "user:alice"), 0u);   // secret keys
  EXPECT_GT(meter.sent("aa:MedOrg", "owner:hospital"), 0u);  // public keys
  EXPECT_GT(meter.sent("owner:hospital", "server"), 0u);  // upload
  EXPECT_GT(meter.sent("server", "user:alice"), 0u);      // download
  EXPECT_EQ(meter.sent("server", "user:bob"), 0u);
}

TEST_F(SystemTest, StorageReportShape) {
  upload_patient_record();
  const auto report = sys.storage_report();
  // AA storage is exactly one exponent — the paper's headline claim.
  EXPECT_EQ(report.per_entity.at("aa:MedOrg"), sys.group().zr_size());
  EXPECT_EQ(report.per_entity.at("aa:TrialAdmin"), sys.group().zr_size());
  EXPECT_GT(report.per_entity.at("owner:hospital"), 2 * sys.group().zr_size());
  EXPECT_GT(report.per_entity.at("user:alice"), 0u);
  EXPECT_GT(report.per_entity.at("server"), 0u);
}

// health() is documented safe to call concurrently with operations on
// other threads. Reader threads hammer it during a mixed workload
// (uploads, downloads, a revocation, parked deliveries under scripted
// faults) and every snapshot must be internally reconciled: the
// per-destination pending map sums to pending_deliveries, counters
// never run backwards, and send accounting stays consistent.
TEST_F(SystemTest, HealthReconcilesUnderConcurrentMixedWorkload) {
  upload_patient_record();

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      uint64_t prev_ok = 0, prev_applied = 0, prev_ms = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const CloudSystem::Health h = sys.health();
        uint64_t by_dest = 0;
        for (const auto& [to, n] : h.pending_by_destination) by_dest += n;
        if (by_dest != h.pending_deliveries ||  // map and total from one lock scope
            h.sends_ok < prev_ok ||             // counters are monotonic
            h.applied_requests < prev_applied || h.virtual_ms < prev_ms ||
            h.transport.frames < h.transport.deliveries ||
            h.transport.bytes_accepted > h.transport.bytes_delivered) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        prev_ok = h.sends_ok;
        prev_applied = h.applied_requests;
        prev_ms = h.virtual_ms;
      }
    });
  }

  // Mixed workload on this thread, including a faulty stretch that
  // parks deliveries so pending_by_destination is actually exercised.
  for (int round = 0; round < 4; ++round) {
    sys.upload("hospital", "load-" + std::to_string(round),
               {{"v", bytes_of("payload"), "Doctor@MedOrg"}});
    (void)sys.download_report("alice", "load-" + std::to_string(round));
  }
  auto& loopback = dynamic_cast<LoopbackTransport&>(sys.transport());
  loopback.faults().fail_next("owner:hospital", "server", 50);
  sys.upload("hospital", "parked", {{"v", bytes_of("late"), "Doctor@MedOrg"}});
  EXPECT_GT(sys.health().pending_deliveries, 0u);
  (void)sys.revoke_attribute("MedOrg", "bob", "Nurse");
  while (sys.flush_pending() != 0) {
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load()) << "a health() snapshot failed reconciliation";

  const CloudSystem::Health h = sys.health();
  EXPECT_EQ(h.pending_deliveries, 0u);
  EXPECT_TRUE(h.pending_by_destination.empty());
  EXPECT_GT(h.sends_ok, 0u);
}

// telemetry_snapshot() surfaces both the process-wide counters and this
// system's collector gauges, reconciled against health()/server stats.
TEST_F(SystemTest, TelemetrySnapshotMatchesStructuredStats) {
  upload_patient_record();
  (void)sys.download_report("alice", "patient-42");

  const telemetry::Snapshot snap = sys.telemetry_snapshot();
  const CloudSystem::Health h = sys.health();
  const ShardStats server = sys.server().stats().totals();

  // Collector gauges: this system is the only one alive in the fixture,
  // but the registry is process-wide, so assert lower bounds.
  EXPECT_GE(snap.gauge("maabe_system_sends_ok"), 0);
  EXPECT_GE(static_cast<uint64_t>(snap.gauge("maabe_system_sends_ok")), h.sends_ok);
  EXPECT_GE(static_cast<uint64_t>(snap.gauge("maabe_system_server_files")),
            server.files);
  EXPECT_GE(static_cast<uint64_t>(snap.gauge("maabe_system_channel_payload_bytes")),
            h.transport.payload_bytes);
  // Registry counters move with the same traffic.
  EXPECT_GT(snap.counter("maabe_transport_frames_total"), 0u);
  EXPECT_GT(snap.counter("maabe_server_stores_total"), 0u);
  EXPECT_GT(snap.counter("maabe_server_fetches_total"), 0u);
  // And the exposition renders them.
  const std::string text = snap.prometheus_text();
  EXPECT_NE(text.find("# TYPE maabe_system_pending_deliveries gauge"),
            std::string::npos);
}

TEST_F(SystemTest, LateAuthorityGetsOwnerShares) {
  // An authority added after owners exist still issues working keys.
  sys.add_authority("Gov", {"Auditor"});
  sys.publish_authority_keys("Gov", "hospital");
  sys.add_user("dave");
  sys.assign_attributes("Gov", "dave", {"Auditor"});
  sys.issue_user_key("Gov", "dave", "hospital");
  sys.upload("hospital", "audit-log", {{"log", bytes_of("entries"), "Auditor@Gov"}});
  EXPECT_EQ(sys.download("dave", "audit-log").size(), 1u);
}

}  // namespace
}  // namespace maabe::cloud
