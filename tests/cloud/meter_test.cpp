#include "cloud/meter.h"

#include <gtest/gtest.h>

namespace maabe::cloud {
namespace {

TEST(Meter, RecordsAndAccumulates) {
  ChannelMeter m;
  EXPECT_EQ(m.sent("a", "b"), 0u);
  m.record("a", "b", 10);
  m.record("a", "b", 5);
  EXPECT_EQ(m.sent("a", "b"), 15u);
  EXPECT_EQ(m.sent("b", "a"), 0u);
}

TEST(Meter, BetweenSumsBothDirections) {
  ChannelMeter m;
  m.record("a", "b", 10);
  m.record("b", "a", 7);
  EXPECT_EQ(m.between("a", "b"), 17u);
  EXPECT_EQ(m.between("b", "a"), 17u);
}

TEST(Meter, InvolvingSumsAllChannels) {
  ChannelMeter m;
  m.record("a", "b", 1);
  m.record("c", "a", 2);
  m.record("b", "c", 4);
  EXPECT_EQ(m.involving("a"), 3u);
  EXPECT_EQ(m.involving("b"), 5u);
  EXPECT_EQ(m.involving("d"), 0u);
}

TEST(Meter, ApplyAccumulatesDeliveredVsAcceptedSplit) {
  ChannelMeter m;
  m.apply("a", "b", [](ChannelStats& s) {
    s.deliveries = 2;
    s.bytes_delivered = 20;  // both copies arrived
    s.bytes_accepted = 10;   // only the first one applied
    s.redeliveries = 1;
  });
  const ChannelStats row = m.stats("a", "b");
  EXPECT_EQ(row.bytes_delivered, 20u);
  EXPECT_EQ(row.bytes_accepted, 10u);
  // totals() folds the split through operator+= like every other field.
  m.apply("b", "c", [](ChannelStats& s) {
    s.bytes_delivered = 5;
    s.bytes_accepted = 5;
  });
  const ChannelStats t = m.totals();
  EXPECT_EQ(t.bytes_delivered, 25u);
  EXPECT_EQ(t.bytes_accepted, 15u);
  EXPECT_EQ(t.redeliveries, 1u);
}

TEST(Meter, EntriesReturnsSnapshotCopy) {
  ChannelMeter m;
  m.record("a", "b", 3);
  auto snap = m.entries();
  ASSERT_EQ(snap.size(), 1u);
  m.record("a", "b", 4);  // later writes must not leak into the snapshot
  const std::pair<std::string, std::string> key{"a", "b"};
  EXPECT_EQ(snap[key].payload_bytes, 3u);
  EXPECT_EQ(m.entries()[key].payload_bytes, 7u);
}

TEST(Meter, Reset) {
  ChannelMeter m;
  m.record("a", "b", 10);
  m.reset();
  EXPECT_EQ(m.sent("a", "b"), 0u);
  EXPECT_TRUE(m.entries().empty());
}

}  // namespace
}  // namespace maabe::cloud
