#include "cloud/meter.h"

#include <gtest/gtest.h>

namespace maabe::cloud {
namespace {

TEST(Meter, RecordsAndAccumulates) {
  ChannelMeter m;
  EXPECT_EQ(m.sent("a", "b"), 0u);
  m.record("a", "b", 10);
  m.record("a", "b", 5);
  EXPECT_EQ(m.sent("a", "b"), 15u);
  EXPECT_EQ(m.sent("b", "a"), 0u);
}

TEST(Meter, BetweenSumsBothDirections) {
  ChannelMeter m;
  m.record("a", "b", 10);
  m.record("b", "a", 7);
  EXPECT_EQ(m.between("a", "b"), 17u);
  EXPECT_EQ(m.between("b", "a"), 17u);
}

TEST(Meter, InvolvingSumsAllChannels) {
  ChannelMeter m;
  m.record("a", "b", 1);
  m.record("c", "a", 2);
  m.record("b", "c", 4);
  EXPECT_EQ(m.involving("a"), 3u);
  EXPECT_EQ(m.involving("b"), 5u);
  EXPECT_EQ(m.involving("d"), 0u);
}

TEST(Meter, Reset) {
  ChannelMeter m;
  m.record("a", "b", 10);
  m.reset();
  EXPECT_EQ(m.sent("a", "b"), 0u);
  EXPECT_TRUE(m.entries().empty());
}

}  // namespace
}  // namespace maabe::cloud
