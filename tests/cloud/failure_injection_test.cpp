// Failure injection on the storage path: corrupted wire bytes, swapped
// slots and cross-file splicing must surface as typed errors (WireError
// on malformed structure, CryptoError on MAC failure) — never as silent
// wrong plaintext.
#include <gtest/gtest.h>

#include "cloud/system.h"
#include "common/errors.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

class FailureInjection : public ::testing::Test {
 protected:
  FailureInjection() : grp(Group::test_small()), sys(grp, "inject") {
    sys.add_authority("Med", {"Doctor"});
    sys.add_owner("hosp");
    sys.publish_authority_keys("Med", "hosp");
    sys.add_user("alice");
    sys.assign_attributes("Med", "alice", {"Doctor"});
    sys.issue_user_key("Med", "alice", "hosp");
    sys.upload("hosp", "f1",
               {{"a", bytes_of("component A plaintext"), "Doctor@Med"},
                {"b", bytes_of("component B plaintext"), "Doctor@Med"}});
  }

  std::shared_ptr<const Group> grp;
  CloudSystem sys;
};

TEST_F(FailureInjection, BitflipsNeverYieldWrongPlaintext) {
  const std::shared_ptr<const StoredFile> original = sys.server().fetch("f1");
  const Bytes wire = serialize(*grp, *original);
  const Consumer& alice = sys.user("alice");

  // Flip one byte at a spread of positions across the whole encoding.
  int structural = 0, authentication = 0, survived = 0;
  for (size_t pos = 0; pos < wire.size(); pos += 13) {
    Bytes bad = wire;
    bad[pos] ^= 0x40;
    try {
      const StoredFile file = deserialize_stored_file(*grp, bad);
      const auto view = sys.user("alice").open_file(file);
      // A flip confined to ignorable metadata may legitimately survive —
      // but any recovered plaintext must be the true one.
      for (const auto& [name, data] : view) {
        EXPECT_TRUE(string_of(data) == "component A plaintext" ||
                    string_of(data) == "component B plaintext")
            << "WRONG PLAINTEXT at corrupt position " << pos;
      }
      ++survived;
    } catch (const WireError&) {
      ++structural;
    } catch (const CryptoError&) {
      ++authentication;
    } catch (const SchemeError&) {
      // e.g. corrupted version table -> version mismatch; acceptable.
      ++structural;
    }
  }
  (void)alice;
  // Most positions must be detected; some flips (e.g. inside ids or
  // policy text) legitimately parse but then fail later or change
  // nothing security-relevant.
  EXPECT_GT(structural + authentication, 0);
}

TEST_F(FailureInjection, SwappedSealedPayloadsDetected) {
  // Swap the two components' symmetric payloads: AAD binding (file id +
  // component name) must make both fail authentication.
  StoredFile file = *sys.server().fetch("f1");
  std::swap(file.slots[0].sealed_data, file.slots[1].sealed_data);
  EXPECT_THROW(sys.user("alice").open_file(file), CryptoError);
}

TEST_F(FailureInjection, SplicedKeyCiphertextDetected) {
  // Replace component a's key-ciphertext with component b's: the KEM
  // seed then derives b's content key, which cannot open a's box.
  StoredFile file = *sys.server().fetch("f1");
  file.slots[0].key_ct = file.slots[1].key_ct;
  EXPECT_THROW(sys.user("alice").open_file(file), CryptoError);
}

TEST_F(FailureInjection, TruncatedWireAlwaysThrows) {
  const Bytes wire = serialize(*grp, *sys.server().fetch("f1"));
  for (size_t len = 0; len < wire.size(); len += 7) {
    EXPECT_THROW(deserialize_stored_file(*grp, ByteView(wire.data(), len)), WireError)
        << len;
  }
}

TEST_F(FailureInjection, ForeignGroupElementsRejected) {
  // A ciphertext whose points were generated on a DIFFERENT curve
  // instance must fail to deserialize (x not on curve / value too big)
  // with overwhelming probability rather than decrypt to junk.
  crypto::Drbg rng(std::string_view("gen"));
  const auto params = pairing::TypeAParams::generate(48, 160, rng);
  auto other = Group::create(params);
  const Bytes foreign = other->g1_random(rng).to_bytes();
  EXPECT_NE(foreign.size(), grp->g1_size());
  EXPECT_THROW((void)grp->g1_from_bytes(foreign), WireError);
}

}  // namespace
}  // namespace maabe::cloud
