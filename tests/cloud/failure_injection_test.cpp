// Failure injection on the storage path: corrupted wire bytes, swapped
// slots and cross-file splicing must surface as typed errors (WireError
// on malformed structure, CryptoError on MAC failure) — never as silent
// wrong plaintext.
#include <gtest/gtest.h>

#include "cloud/system.h"
#include "common/errors.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

class FailureInjection : public ::testing::Test {
 protected:
  FailureInjection() : grp(Group::test_small()), sys(grp, "inject") {
    sys.add_authority("Med", {"Doctor"});
    sys.add_owner("hosp");
    sys.publish_authority_keys("Med", "hosp");
    sys.add_user("alice");
    sys.assign_attributes("Med", "alice", {"Doctor"});
    sys.issue_user_key("Med", "alice", "hosp");
    sys.upload("hosp", "f1",
               {{"a", bytes_of("component A plaintext"), "Doctor@Med"},
                {"b", bytes_of("component B plaintext"), "Doctor@Med"}});
  }

  std::shared_ptr<const Group> grp;
  CloudSystem sys;
};

TEST_F(FailureInjection, BitflipsNeverYieldWrongPlaintext) {
  const std::shared_ptr<const StoredFile> original = sys.server().fetch("f1");
  const Bytes wire = serialize(*grp, *original);
  const Consumer& alice = sys.user("alice");

  // Flip one byte at a spread of positions across the whole encoding.
  int structural = 0, authentication = 0, survived = 0;
  for (size_t pos = 0; pos < wire.size(); pos += 13) {
    Bytes bad = wire;
    bad[pos] ^= 0x40;
    try {
      const StoredFile file = deserialize_stored_file(*grp, bad);
      const auto view = sys.user("alice").open_file(file);
      // A flip confined to ignorable metadata may legitimately survive —
      // but any recovered plaintext must be the true one.
      for (const auto& [name, data] : view) {
        EXPECT_TRUE(string_of(data) == "component A plaintext" ||
                    string_of(data) == "component B plaintext")
            << "WRONG PLAINTEXT at corrupt position " << pos;
      }
      ++survived;
    } catch (const WireError&) {
      ++structural;
    } catch (const CryptoError&) {
      ++authentication;
    } catch (const SchemeError&) {
      // e.g. corrupted version table -> version mismatch; acceptable.
      ++structural;
    }
  }
  (void)alice;
  // Most positions must be detected; some flips (e.g. inside ids or
  // policy text) legitimately parse but then fail later or change
  // nothing security-relevant.
  EXPECT_GT(structural + authentication, 0);
}

TEST_F(FailureInjection, SwappedSealedPayloadsDetected) {
  // Swap the two components' symmetric payloads: AAD binding (file id +
  // component name) must make both fail authentication.
  StoredFile file = *sys.server().fetch("f1");
  std::swap(file.slots[0].sealed_data, file.slots[1].sealed_data);
  EXPECT_THROW(sys.user("alice").open_file(file), CryptoError);
}

TEST_F(FailureInjection, SplicedKeyCiphertextDetected) {
  // Replace component a's key-ciphertext with component b's: the KEM
  // seed then derives b's content key, which cannot open a's box.
  StoredFile file = *sys.server().fetch("f1");
  file.slots[0].key_ct = file.slots[1].key_ct;
  EXPECT_THROW(sys.user("alice").open_file(file), CryptoError);
}

TEST_F(FailureInjection, TruncatedWireAlwaysThrows) {
  const Bytes wire = serialize(*grp, *sys.server().fetch("f1"));
  for (size_t len = 0; len < wire.size(); len += 7) {
    EXPECT_THROW(deserialize_stored_file(*grp, ByteView(wire.data(), len)), WireError)
        << len;
  }
}

// ---- Transport faults on protocol channels ---------------------------
// A faulty channel must surface as TransportError (or a typed
// SchemeError) and degrade access — never yield wrong plaintext and
// never let a revoked user keep reading.

LoopbackTransport& loopback(CloudSystem& sys) {
  return dynamic_cast<LoopbackTransport&>(sys.transport());
}

/// World like the fixture's, but on a seeded (faultable) transport and
/// WITHOUT alice's key issued yet. Channels are fault-free until a test
/// dials a FaultSpec in.
class TransportFaults : public ::testing::Test {
 protected:
  TransportFaults()
      : grp(Group::test_small()),
        sys(grp, "inject-transport",
            std::make_unique<LoopbackTransport>(FaultPlan(1234))) {
    sys.add_authority("Med", {"Doctor"});
    sys.add_owner("hosp");
    sys.publish_authority_keys("Med", "hosp");
    sys.add_user("alice");
    sys.assign_attributes("Med", "alice", {"Doctor"});
    sys.upload("hosp", "f1",
               {{"a", bytes_of("component A plaintext"), "Doctor@Med"},
                {"b", bytes_of("component B plaintext"), "Doctor@Med"}});
  }

  std::shared_ptr<const Group> grp;
  CloudSystem sys;
};

TEST_F(TransportFaults, CorruptKeyIssuanceChannelFailsTypedThenRecovers) {
  FaultSpec corrupting;
  corrupting.corrupt = 1.0;
  loopback(sys).faults().set_channel("aa:Med", "user:alice", corrupting);
  try {
    sys.issue_user_key("Med", "alice", "hosp");
    FAIL() << "issuance over an always-corrupting channel succeeded";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kExhausted);
  }
  // Degraded, not wrong: without the key every slot reads kNoKey.
  const auto report = sys.download_report("alice", "f1");
  EXPECT_TRUE(report.opened().empty());
  EXPECT_GT(sys.meter().stats("aa:Med", "user:alice").corruptions, 0u);

  // Heal the channel: the retried operation converges.
  loopback(sys).faults().set_channel("aa:Med", "user:alice", FaultSpec());
  sys.issue_user_key("Med", "alice", "hosp");
  EXPECT_TRUE(sys.download_report("alice", "f1").all_ok());
}

TEST_F(TransportFaults, DuplicatedIssuanceAppliedOnce) {
  FaultSpec duplicating;
  duplicating.duplicate = 1.0;
  loopback(sys).faults().set_channel("aa:Med", "user:alice", duplicating);
  sys.issue_user_key("Med", "alice", "hosp");
  EXPECT_EQ(sys.meter().stats("aa:Med", "user:alice").redeliveries, 1u);
  EXPECT_TRUE(sys.download_report("alice", "f1").all_ok());
}

TEST_F(TransportFaults, UnreachableServerParksEpochAndFailsReadsClosed) {
  sys.issue_user_key("Med", "alice", "hosp");
  ASSERT_TRUE(sys.download_report("alice", "f1").all_ok());

  FaultSpec dropping;
  dropping.drop = 1.0;
  loopback(sys).faults().set_channel("owner:hosp", "server", dropping);
  // The revocation runs, but the epoch cannot reach the server yet.
  const size_t committed = sys.revoke_attribute("Med", "alice", "Doctor");
  EXPECT_EQ(committed, 0u);
  EXPECT_GT(sys.health().pending_deliveries, 0u);

  // Reads fail closed while the epoch is parked: the server would still
  // serve pre-revocation ciphertext.
  try {
    (void)sys.download_report("alice", "f1");
    FAIL() << "download served stale data during a parked epoch";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kDegraded);
  }

  // Heal and drain: the epoch commits and the revoked user is locked out.
  loopback(sys).faults().set_channel("owner:hosp", "server", FaultSpec());
  EXPECT_EQ(sys.flush_pending(), 0u);
  const auto report = sys.download_report("alice", "f1");
  EXPECT_TRUE(report.opened().empty());
  for (const auto& slot : report.slots) {
    EXPECT_EQ(slot.state, CloudSystem::SlotState::kNoKey);
  }
}

TEST_F(TransportFaults, DuplicatedUpdateKeyFoldedOnce) {
  sys.issue_user_key("Med", "alice", "hosp");
  sys.add_user("bob");
  sys.assign_attributes("Med", "bob", {"Doctor"});
  sys.issue_user_key("Med", "bob", "hosp");

  // Revoking bob sends alice an update key; duplicate every frame on
  // that channel. Folding UK2 twice would brick alice's key — the
  // request-id dedup must apply it exactly once.
  FaultSpec duplicating;
  duplicating.duplicate = 1.0;
  loopback(sys).faults().set_channel("aa:Med", "user:alice", duplicating);
  EXPECT_GT(sys.revoke_attribute("Med", "bob", "Doctor"), 0u);
  EXPECT_GT(sys.meter().stats("aa:Med", "user:alice").redeliveries, 0u);

  const auto report = sys.download_report("alice", "f1");
  EXPECT_TRUE(report.all_ok());
  for (const auto& [name, data] : report.opened()) {
    EXPECT_TRUE(string_of(data) == "component A plaintext" ||
                string_of(data) == "component B plaintext");
  }
  EXPECT_TRUE(sys.download_report("bob", "f1").opened().empty());
}

TEST_F(FailureInjection, ForeignGroupElementsRejected) {
  // A ciphertext whose points were generated on a DIFFERENT curve
  // instance must fail to deserialize (x not on curve / value too big)
  // with overwhelming probability rather than decrypt to junk.
  crypto::Drbg rng(std::string_view("gen"));
  const auto params = pairing::TypeAParams::generate(48, 160, rng);
  auto other = Group::create(params);
  const Bytes foreign = other->g1_random(rng).to_bytes();
  EXPECT_NE(foreign.size(), grp->g1_size());
  EXPECT_THROW((void)grp->g1_from_bytes(foreign), WireError);
}

}  // namespace
}  // namespace maabe::cloud
