// Group's documented const-thread-safety contract (pairing/group.h): a
// fully constructed Group may be used concurrently from many threads as
// long as every call is const. The engine's pool depends on this, so
// hammer one shared Group from several threads and check every result
// against values precomputed serially. Run under MAABE_SANITIZE to get
// tsan/asan-grade evidence on top of the value checks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pairing/group.h"

namespace maabe::pairing {
namespace {

TEST(GroupConcurrencyTest, ConstUseFromManyThreadsMatchesSerialResults) {
  const std::shared_ptr<const Group> grp = Group::test_small();
  crypto::Drbg rng(std::string_view("group-concurrency"));

  constexpr size_t kItems = 24;
  struct Item {
    Zr exp;
    G1 a, b;
    Bytes g_pow, egg_pow, pair, hashed, mul;
  };
  std::vector<Item> items;
  for (size_t i = 0; i < kItems; ++i) {
    Item it;
    it.exp = grp->zr_random(rng);
    it.a = grp->g1_random(rng);
    it.b = grp->g1_random(rng);
    it.g_pow = grp->g_pow(it.exp).to_bytes();
    it.egg_pow = grp->egg_pow(it.exp).to_bytes();
    it.pair = grp->pair(it.a, it.b).to_bytes();
    it.hashed = grp->hash_to_g1("item-" + std::to_string(i)).to_bytes();
    it.mul = it.a.mul(it.exp).to_bytes();
    items.push_back(std::move(it));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Stagger the starting offset so threads collide on different
        // operations at any given moment.
        for (size_t k = 0; k < kItems; ++k) {
          const Item& it = items[(k + static_cast<size_t>(t)) % kItems];
          if (grp->g_pow(it.exp).to_bytes() != it.g_pow) ++mismatches;
          if (grp->egg_pow(it.exp).to_bytes() != it.egg_pow) ++mismatches;
          if (grp->pair(it.a, it.b).to_bytes() != it.pair) ++mismatches;
          if (it.a.mul(it.exp).to_bytes() != it.mul) ++mismatches;
        }
        for (size_t i = 0; i < kItems; ++i) {
          if (grp->hash_to_g1("item-" + std::to_string(i)).to_bytes() !=
              items[i].hashed)
            ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(GroupConcurrencyTest, SharedPrecomputedTablesAreConstSafe) {
  const std::shared_ptr<const Group> grp = Group::test_small();
  crypto::Drbg rng(std::string_view("group-concurrency-tables"));

  const G1 base = grp->g1_random(rng);
  const GT gt_base = grp->gt_random(rng);
  const std::unique_ptr<G1FixedBase> g1_table = grp->g1_precompute(base);
  const std::unique_ptr<GtFixedBase> gt_table = grp->gt_precompute(gt_base);

  constexpr size_t kItems = 16;
  std::vector<Zr> exps;
  std::vector<Bytes> expect_g1, expect_gt;
  for (size_t i = 0; i < kItems; ++i) {
    exps.push_back(grp->zr_random(rng));
    expect_g1.push_back(base.mul(exps.back()).to_bytes());
    expect_gt.push_back(gt_base.pow(exps.back()).to_bytes());
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kItems; ++i) {
        if (grp->g1_pow_with(*g1_table, exps[i]).to_bytes() != expect_g1[i])
          ++mismatches;
        if (grp->gt_pow_with(*gt_table, exps[i]).to_bytes() != expect_gt[i])
          ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace maabe::pairing
