// CryptoEngine batch APIs must agree bit-for-bit with the naive serial
// fold/loop they replace, for any thread count.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/errors.h"
#include "telemetry/metrics.h"

namespace maabe::engine {
namespace {

using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : grp(Group::test_small()), rng(std::string_view("engine-test")) {}

  std::shared_ptr<const Group> grp;
  crypto::Drbg rng;
};

TEST_F(EngineTest, PairingProductMatchesSerialFold) {
  CryptoEngine eng(*grp, 4);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{5}, size_t{16},
                         size_t{17}}) {
    std::vector<CryptoEngine::PairTerm> terms;
    for (size_t i = 0; i < n; ++i)
      terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});

    GT expected = grp->gt_one();
    for (const auto& t : terms) expected = expected * grp->pair(t.a, t.b);

    const GT got = eng.pairing_product(terms);
    EXPECT_EQ(got.to_bytes(), expected.to_bytes()) << "n=" << n;
  }
}

TEST_F(EngineTest, PairingProductSkipsIdentityTermsLikeSerialFold) {
  CryptoEngine eng(*grp, 4);
  const G1 inf = grp->g1_identity();
  std::vector<CryptoEngine::PairTerm> terms;
  terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  terms.push_back({inf, grp->g1_random(rng)});
  terms.push_back({grp->g1_random(rng), inf});
  terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  terms.push_back({inf, inf});
  GT expected = grp->gt_one();
  for (const auto& t : terms) expected = expected * grp->pair(t.a, t.b);
  EXPECT_EQ(eng.pairing_product(terms).to_bytes(), expected.to_bytes());

  // All-identity product: GT's one, and no final exponentiation paid.
  const EngineStats before = eng.stats();
  const GT one = eng.pairing_product({{inf, inf}, {inf, grp->g1_random(rng)}});
  EXPECT_EQ(one.to_bytes(), grp->gt_one().to_bytes());
  EXPECT_EQ((eng.stats() - before).final_exps, 0u);
  EXPECT_EQ((eng.stats() - before).miller_loops, 0u);
}

TEST_F(EngineTest, PairingPowerProductMatchesSerialFold) {
  CryptoEngine eng(*grp, 4);
  std::vector<CryptoEngine::PairTerm> terms;
  std::vector<Zr> exps;
  // Adjacent equal exponents (the decrypt-denominator shape, folded
  // into one exponentiation per run), then distinct ones.
  const Zr shared = grp->zr_random(rng);
  for (int i = 0; i < 6; ++i) {
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
    exps.push_back(i < 4 ? shared : grp->zr_random(rng));
  }
  // A zero exponent and an identity term must both drop out.
  terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  exps.push_back(grp->zr_zero());
  terms.push_back({grp->g1_identity(), grp->g1_random(rng)});
  exps.push_back(grp->zr_random(rng));

  GT expected = grp->gt_one();
  for (size_t i = 0; i < terms.size(); ++i)
    expected = expected * grp->pair(terms[i].a, terms[i].b).pow(exps[i]);
  EXPECT_EQ(eng.pairing_power_product(terms, exps).to_bytes(),
            expected.to_bytes());
  EXPECT_THROW(eng.pairing_power_product(terms, {grp->zr_one()}), MathError);
}

TEST_F(EngineTest, PairingProductPaysExactlyOneFinalExponentiation) {
  CryptoEngine eng(*grp, 4);
  std::vector<CryptoEngine::PairTerm> terms;
  for (int i = 0; i < 16; ++i)
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  const EngineStats before = eng.stats();
  const telemetry::Snapshot snap_before = telemetry::MetricsRegistry::global().collect();
  (void)eng.pairing_product(terms);
  const telemetry::Snapshot snap_after = telemetry::MetricsRegistry::global().collect();
  const EngineStats delta = eng.stats() - before;
  EXPECT_EQ(delta.pairings, 16u);
  EXPECT_EQ(delta.miller_loops, 16u);
  EXPECT_EQ(delta.final_exps, 1u);
  EXPECT_EQ(delta.batches, 1u);
  // Mirrored at the pairing layer's global telemetry: 16 Miller loops,
  // ONE shared final exponentiation for the whole product.
  EXPECT_EQ(snap_after.counter("maabe_pairing_final_exps_total") -
                snap_before.counter("maabe_pairing_final_exps_total"),
            1u);
  EXPECT_EQ(snap_after.counter("maabe_pairing_miller_loops_total") -
                snap_before.counter("maabe_pairing_miller_loops_total"),
            16u);
}

TEST_F(EngineTest, RepeatedFirstArgumentPromotesToLineTable) {
  CryptoEngine eng(*grp, 2);
  const G1 hot = grp->g1_random(rng);
  // Enough single-term products against the same first argument to
  // cross the build threshold mid-sequence; bits must not change.
  for (int i = 0; i < 8; ++i) {
    const G1 q = grp->g1_random(rng);
    EXPECT_EQ(eng.pairing_product({{hot, q}}).to_bytes(),
              grp->pair(hot, q).to_bytes())
        << "round " << i;
  }
  const EngineStats s = eng.stats();
  EXPECT_GE(s.precomp_builds, 1u);
  EXPECT_GT(s.precomp_hits, 0u);
}

TEST_F(EngineTest, EnginePairUsesWarmedPrecomp) {
  CryptoEngine eng(*grp, 1);
  const G1 base = grp->g1_random(rng);
  eng.warm_pair_precomp(base);
  EXPECT_EQ(eng.stats().precomp_builds, 1u);
  // Warming twice is a no-op.
  eng.warm_pair_precomp(base);
  EXPECT_EQ(eng.stats().precomp_builds, 1u);
  for (int i = 0; i < 3; ++i) {
    const G1 q = grp->g1_random(rng);
    EXPECT_EQ(eng.pair(base, q).to_bytes(), grp->pair(base, q).to_bytes());
  }
  EXPECT_EQ(eng.stats().precomp_hits, 3u);
  EXPECT_EQ(eng.pair(base, grp->g1_identity()).to_bytes(),
            grp->gt_one().to_bytes());
}

TEST_F(EngineTest, PairBatchMatchesIndividualPairings) {
  CryptoEngine eng(*grp, 3);
  std::vector<CryptoEngine::PairTerm> terms;
  for (int i = 0; i < 7; ++i)
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  const std::vector<GT> got = eng.pair_batch(terms);
  ASSERT_EQ(got.size(), terms.size());
  for (size_t i = 0; i < terms.size(); ++i)
    EXPECT_EQ(got[i].to_bytes(), grp->pair(terms[i].a, terms[i].b).to_bytes());
}

TEST_F(EngineTest, MultiExpG1MatchesSerialAcrossCachePromotion) {
  CryptoEngine eng(*grp, 4);
  // One base repeated often enough to cross the table-build threshold
  // mid-batch, plus unique bases that stay on the plain-mul path.
  const G1 hot = grp->g1_random(rng);
  std::vector<CryptoEngine::G1Term> terms;
  for (int i = 0; i < 10; ++i) terms.push_back({hot, grp->zr_random(rng)});
  for (int i = 0; i < 3; ++i)
    terms.push_back({grp->g1_random(rng), grp->zr_random(rng)});
  terms.push_back({grp->g1_identity(), grp->zr_random(rng)});

  // Twice: first run builds the hot base's table, second is all hits.
  for (int round = 0; round < 2; ++round) {
    const std::vector<G1> got = eng.multi_exp_g1(terms);
    ASSERT_EQ(got.size(), terms.size());
    for (size_t i = 0; i < terms.size(); ++i) {
      EXPECT_EQ(got[i].to_bytes(), terms[i].base.mul(terms[i].exp).to_bytes())
          << "round=" << round << " i=" << i;
    }
  }
  const EngineStats s = eng.stats();
  EXPECT_GE(s.table_builds, 1u);
  EXPECT_GT(s.table_hits, 0u);
}

TEST_F(EngineTest, MultiExpGtMatchesSerial) {
  CryptoEngine eng(*grp, 4);
  const GT hot = grp->gt_random(rng);
  std::vector<CryptoEngine::GtTerm> terms;
  for (int i = 0; i < 8; ++i) terms.push_back({hot, grp->zr_random(rng)});
  terms.push_back({grp->gt_random(rng), grp->zr_random(rng)});
  terms.push_back({grp->gt_one(), grp->zr_random(rng)});

  for (int round = 0; round < 2; ++round) {
    const std::vector<GT> got = eng.multi_exp_gt(terms);
    ASSERT_EQ(got.size(), terms.size());
    for (size_t i = 0; i < terms.size(); ++i) {
      EXPECT_EQ(got[i].to_bytes(), terms[i].base.pow(terms[i].exp).to_bytes())
          << "round=" << round << " i=" << i;
    }
  }
}

TEST_F(EngineTest, UncachedMultiExpMatchesToo) {
  CryptoEngine eng(*grp, 2);
  std::vector<CryptoEngine::GtTerm> terms;
  for (int i = 0; i < 5; ++i)
    terms.push_back({grp->gt_random(rng), grp->zr_random(rng)});
  const std::vector<GT> got = eng.multi_exp_gt(terms, /*cache_bases=*/false);
  for (size_t i = 0; i < terms.size(); ++i)
    EXPECT_EQ(got[i].to_bytes(), terms[i].base.pow(terms[i].exp).to_bytes());
  EXPECT_EQ(eng.stats().table_builds, 0u);
}

TEST_F(EngineTest, FixedBaseBatchesMatchGroupTables) {
  CryptoEngine eng(*grp, 4);
  std::vector<Zr> exps;
  for (int i = 0; i < 9; ++i) exps.push_back(grp->zr_random(rng));
  const std::vector<G1> g = eng.g_pow_batch(exps);
  const std::vector<GT> egg = eng.egg_pow_batch(exps);
  for (size_t i = 0; i < exps.size(); ++i) {
    EXPECT_EQ(g[i].to_bytes(), grp->g_pow(exps[i]).to_bytes());
    EXPECT_EQ(egg[i].to_bytes(), grp->egg_pow(exps[i]).to_bytes());
  }
}

TEST_F(EngineTest, SerialEngineBypassesPool) {
  CryptoEngine eng(*grp, 1);
  EXPECT_EQ(eng.threads(), 1);
  std::vector<CryptoEngine::PairTerm> terms;
  for (int i = 0; i < 4; ++i)
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  GT expected = grp->gt_one();
  for (const auto& t : terms) expected = expected * grp->pair(t.a, t.b);
  EXPECT_EQ(eng.pairing_product(terms).to_bytes(), expected.to_bytes());
}

TEST_F(EngineTest, ParallelForCoversEveryIndexExactlyOnce) {
  CryptoEngine eng(*grp, 4);
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  eng.parallel_for(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_F(EngineTest, ParallelForPropagatesExceptions) {
  CryptoEngine eng(*grp, 4);
  EXPECT_THROW(eng.parallel_for(64,
                                [&](size_t i) {
                                  if (i == 13) throw MathError("boom");
                                }),
               MathError);
  // The pool must survive a failed job.
  std::atomic<size_t> count{0};
  eng.parallel_for(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16u);
}

TEST_F(EngineTest, ParallelForAbandonsRemainingItemsAfterThrow) {
  // Documented contract: after the first exception the sweep abandons
  // unstarted items rather than draining them — a failed sweep is
  // neither all nor nothing. Failure-atomic callers (CloudServer's
  // revocation epoch) must stage copies and commit only on success.
  CryptoEngine eng(*grp, 2);
  constexpr size_t kN = 10000;
  std::atomic<size_t> ran{0};
  EXPECT_THROW(eng.parallel_for(kN,
                                [&](size_t) {
                                  ran.fetch_add(1);
                                  throw MathError("every item throws");
                                }),
               MathError);
  // Only items already claimed when the first throw hit can have run.
  EXPECT_GE(ran.load(), 1u);
  EXPECT_LT(ran.load(), kN);
  // And the pool is still usable afterwards.
  std::atomic<size_t> count{0};
  eng.parallel_for(32, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32u);
}

TEST_F(EngineTest, StatsCountOpsAndPhasesDiff) {
  CryptoEngine eng(*grp, 2);
  const EngineStats before = eng.stats();
  std::vector<CryptoEngine::PairTerm> terms;
  for (int i = 0; i < 3; ++i)
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  (void)eng.pairing_product(terms);
  (void)eng.g_pow_batch({grp->zr_random(rng), grp->zr_random(rng)});
  const EngineStats delta = eng.stats() - before;
  EXPECT_EQ(delta.pairings, 3u);
  EXPECT_EQ(delta.g1_exps, 2u);
  EXPECT_EQ(delta.batches, 2u);
  eng.reset_stats();
  EXPECT_EQ(eng.stats().pairings, 0u);
}

TEST_F(EngineTest, SetThreadsResizesAndStaysCorrect) {
  CryptoEngine eng(*grp, 1);
  std::vector<CryptoEngine::PairTerm> terms;
  for (int i = 0; i < 6; ++i)
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  const Bytes serial = eng.pairing_product(terms).to_bytes();
  eng.set_threads(8);
  EXPECT_EQ(eng.threads(), 8);
  EXPECT_EQ(eng.pairing_product(terms).to_bytes(), serial);
  eng.set_threads(1);
  EXPECT_EQ(eng.pairing_product(terms).to_bytes(), serial);
}

TEST_F(EngineTest, ForGroupReturnsSameEnginePerGroup) {
  CryptoEngine& a = CryptoEngine::for_group(*grp);
  CryptoEngine& b = CryptoEngine::for_group(*grp);
  EXPECT_EQ(&a, &b);
}

// Snapshot coherency regression: stats() must never tear. Counters
// commit atomically per batch (seqlock), so under a concurrent batch
// workload every snapshot satisfies the exact per-batch arithmetic —
// a torn read (e.g. g1_exps updated but batches not yet) breaks it.
TEST_F(EngineTest, StatsSnapshotsNeverTearUnderConcurrentBatches) {
  CryptoEngine eng(*grp, 2);
  constexpr size_t kBatchSize = 3;
  std::vector<Zr> exps;
  for (size_t i = 0; i < kBatchSize; ++i) exps.push_back(grp->zr_random(rng));

  // The writer runs a fixed batch count and signals completion; the
  // reader hammers stats() until then, so the loop is guaranteed to
  // observe committed batches even when the threads barely overlap.
  constexpr uint64_t kBatches = 300;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < kBatches; ++i) (void)eng.g_pow_batch(exps);
    done.store(true, std::memory_order_release);
  });

  EngineStats prev;
  while (!done.load(std::memory_order_acquire)) {
    const EngineStats s = eng.stats();
    // Per-batch atomicity: every committed g_pow_batch adds exactly
    // kBatchSize g1_exps, kBatchSize tasks and 1 batch, all at once.
    ASSERT_EQ(s.g1_exps, kBatchSize * s.batches);
    ASSERT_EQ(s.tasks, s.g1_exps);
    // Monotonicity across snapshots.
    ASSERT_GE(s.batches, prev.batches);
    ASSERT_GE(s.wall_ns, prev.wall_ns);
    prev = s;
  }
  writer.join();

  const EngineStats end = eng.stats();
  EXPECT_EQ(end.batches, kBatches);
  EXPECT_EQ(end.g1_exps, kBatchSize * end.batches);
}

}  // namespace
}  // namespace maabe::engine
