// The engine's headline guarantee: every scheme operation produces
// byte-identical artifacts at any thread count. Each run below replays
// the identical Drbg seed with the shared per-Group engine forced to 1
// thread (legacy serial path) and to 8 threads, then compares the
// serialized outputs of every phase.
#include <gtest/gtest.h>

#include "abe/scheme.h"
#include "abe/serial.h"
#include "baseline/lewko.h"
#include "baseline/waters.h"
#include "cloud/server.h"
#include "engine/engine.h"
#include "lsss/parser.h"

namespace maabe {
namespace {

using lsss::LsssMatrix;
using lsss::parse_policy;
using pairing::Group;
using pairing::GT;

LsssMatrix policy(const std::string& text) {
  return LsssMatrix::from_policy(parse_policy(text));
}

class DeterminismTest : public ::testing::Test {
 protected:
  DeterminismTest() : grp(Group::test_small()) {}

  std::shared_ptr<const Group> grp;
};

/// Every serialized artifact of one full scheme run: keygen, encrypt,
/// decrypt, key update and server-side re-encryption.
struct Trace {
  std::vector<Bytes> artifacts;

  bool operator==(const Trace&) const = default;
};

Trace run_scheme(const Group& grp, int threads) {
  engine::CryptoEngine::for_group(grp).set_threads(threads);
  crypto::Drbg rng(std::string_view("determinism"));
  Trace t;

  const abe::OwnerMasterKey mk = abe::owner_gen(grp, "owner", rng);
  const abe::OwnerSecretShare share = abe::owner_share(grp, mk);

  std::map<std::string, abe::AuthorityVersionKey> vks;
  std::map<std::string, abe::AuthorityPublicKey> apks;
  std::map<std::string, abe::PublicAttributeKey> attr_pks;
  for (const std::string aid : {"A", "B"}) {
    vks.emplace(aid, abe::aa_setup(grp, aid, rng));
    apks.emplace(aid, abe::aa_public_key(grp, vks.at(aid)));
    for (const std::string name : {"x1", "x2", "x3"}) {
      const abe::PublicAttributeKey pk = abe::aa_attribute_key(grp, vks.at(aid), name);
      attr_pks.emplace(pk.attr.qualified(), pk);
    }
  }

  const abe::UserPublicKey user = abe::ca_register_user(grp, "uid", rng);
  std::map<std::string, abe::UserSecretKey> sks;
  sks.emplace("A", abe::aa_keygen(grp, vks.at("A"), share, user, {"x1", "x2", "x3"}));
  sks.emplace("B", abe::aa_keygen(grp, vks.at("B"), share, user, {"x1"}));
  t.artifacts.push_back(abe::serialize(grp, sks.at("A")));
  t.artifacts.push_back(abe::serialize(grp, sks.at("B")));

  const GT m = grp.gt_random(rng);
  const auto [ct, record] =
      abe::encrypt(grp, mk, "file/ct", m,
                   policy("(x1@A AND x1@B) OR (x2@A AND x3@A)"), apks, attr_pks, rng);
  t.artifacts.push_back(abe::serialize(grp, ct));

  t.artifacts.push_back(abe::decrypt(grp, ct, user, sks).to_bytes());

  // ReKey authority A, then server-side ReEncrypt of several stored files.
  const abe::ReKeyResult rekey = abe::aa_rekey(grp, vks.at("A"), rng);
  const abe::UpdateKey uk = abe::aa_make_update_key(grp, vks.at("A"), rekey.new_vk, share);
  std::map<std::string, abe::PublicAttributeKey> new_attr_pks = attr_pks;
  for (auto& [handle, pk] : new_attr_pks) {
    if (pk.attr.aid == "A") pk = abe::apply_update_to_attribute_pk(grp, pk, uk);
  }

  cloud::CloudServer server(
      std::shared_ptr<const Group>(&grp, [](const Group*) {}));
  std::vector<abe::UpdateInfo> infos;
  for (int f = 0; f < 3; ++f) {
    const std::string file_id = "f" + std::to_string(f);
    const std::string ct_id = cloud::slot_ct_id(file_id, "key");
    const auto [slot_ct, slot_rec] =
        abe::encrypt(grp, mk, ct_id, grp.gt_random(rng),
                     policy("x1@A AND x1@B"), apks, attr_pks, rng);
    server.store({file_id, mk.owner_id, {{"key", slot_ct, Bytes{}}}});
    infos.push_back(abe::owner_update_info(grp, mk, slot_rec, slot_ct, attr_pks,
                                           new_attr_pks, "A"));
  }
  EXPECT_EQ(server.reencrypt(uk, infos), 3u);
  for (int f = 0; f < 3; ++f)
    t.artifacts.push_back(cloud::serialize(
        grp, *server.fetch("f" + std::to_string(f))));

  // The updated user key still decrypts the re-encrypted ciphertext.
  sks.at("A") = abe::apply_update_to_secret_key(grp, sks.at("A"), uk);
  t.artifacts.push_back(abe::serialize(grp, sks.at("A")));
  const abe::Ciphertext new_ct = server.fetch("f0")->slots[0].key_ct;
  t.artifacts.push_back(abe::decrypt(grp, new_ct, user, sks).to_bytes());
  return t;
}

TEST_F(DeterminismTest, SchemeByteIdenticalAcrossThreadCounts) {
  const Trace serial = run_scheme(*grp, 1);
  const Trace parallel = run_scheme(*grp, 8);
  ASSERT_EQ(serial.artifacts.size(), parallel.artifacts.size());
  for (size_t i = 0; i < serial.artifacts.size(); ++i)
    EXPECT_EQ(serial.artifacts[i], parallel.artifacts[i]) << "artifact " << i;
  engine::CryptoEngine::for_group(*grp).set_threads(0);
}

Trace run_baselines(const Group& grp, int threads) {
  engine::CryptoEngine::for_group(grp).set_threads(threads);
  crypto::Drbg rng(std::string_view("determinism-baseline"));
  Trace t;
  const auto push_g1 = [&](const pairing::G1& v) { t.artifacts.push_back(v.to_bytes()); };
  const auto push_gt = [&](const GT& v) { t.artifacts.push_back(v.to_bytes()); };

  // Waters.
  {
    const auto [pk, msk] = baseline::waters_setup(grp, rng);
    const std::set<lsss::Attribute> attrs{{"x1", "W"}, {"x2", "W"}, {"x3", "W"}};
    const baseline::WatersSecretKey sk =
        baseline::waters_keygen(grp, pk, msk, attrs, rng);
    push_g1(sk.k);
    push_g1(sk.l);
    for (const auto& [handle, kx] : sk.kx) push_g1(kx);

    const GT m = grp.gt_random(rng);
    const baseline::WatersCiphertext ct = baseline::waters_encrypt(
        grp, pk, m, policy("x1@W AND (x2@W OR x3@W)"), rng);
    push_gt(ct.c);
    push_g1(ct.c_prime);
    for (const auto& v : ct.ci) push_g1(v);
    for (const auto& v : ct.di) push_g1(v);
    push_gt(baseline::waters_decrypt(grp, ct, sk));
  }

  // Lewko-Waters.
  {
    const baseline::LewkoAuthorityKeys auth =
        baseline::lewko_authority_setup(grp, "L", {"x1", "x2", "x3"}, rng);
    std::map<std::string, baseline::LewkoAttributePublicKey> pks;
    for (const std::string name : {"x1", "x2", "x3"}) {
      const auto pk = baseline::lewko_attribute_pk(grp, auth, name);
      pks.emplace(pk.attr.qualified(), pk);
    }
    baseline::LewkoUserKey key;
    baseline::lewko_keygen(grp, auth, "gid", {"x1", "x2", "x3"}, &key);
    for (const auto& [handle, k] : key.k) push_g1(k);

    const GT m = grp.gt_random(rng);
    const baseline::LewkoCiphertext ct =
        baseline::lewko_encrypt(grp, m, policy("x1@L AND (x2@L OR x3@L)"), pks, rng);
    push_gt(ct.c0);
    for (const auto& v : ct.c1) push_gt(v);
    for (const auto& v : ct.c2) push_g1(v);
    for (const auto& v : ct.c3) push_g1(v);
    push_gt(baseline::lewko_decrypt(grp, ct, key));
  }
  return t;
}

TEST_F(DeterminismTest, BaselinesByteIdenticalAcrossThreadCounts) {
  const Trace serial = run_baselines(*grp, 1);
  const Trace parallel = run_baselines(*grp, 8);
  ASSERT_EQ(serial.artifacts.size(), parallel.artifacts.size());
  for (size_t i = 0; i < serial.artifacts.size(); ++i)
    EXPECT_EQ(serial.artifacts[i], parallel.artifacts[i]) << "artifact " << i;
  engine::CryptoEngine::for_group(*grp).set_threads(0);
}

}  // namespace
}  // namespace maabe
