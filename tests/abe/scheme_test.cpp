#include "abe/scheme.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::abe {
namespace {

using lsss::LsssMatrix;
using lsss::parse_policy;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

// A miniature multi-authority world: one owner, three authorities
// ("Med", "Trial", "Gov") each managing a few attributes, two users.
class SchemeTest : public ::testing::Test {
 protected:
  SchemeTest() : grp(Group::test_small()), rng("scheme-test") {
    owner_mk = owner_gen(*grp, "owner-1", rng);
    owner_sk = owner_share(*grp, owner_mk);

    for (const std::string aid : {"Med", "Trial", "Gov"}) {
      vks.emplace(aid, aa_setup(*grp, aid, rng));
      apks.emplace(aid, aa_public_key(*grp, vks.at(aid)));
    }
    for (const std::string name : {"Doctor", "Nurse", "Admin"}) add_attr("Med", name);
    for (const std::string name : {"Researcher", "Reviewer"}) add_attr("Trial", name);
    for (const std::string name : {"Auditor"}) add_attr("Gov", name);

    alice = ca_register_user(*grp, "alice", rng);
    bob = ca_register_user(*grp, "bob", rng);

    // Alice: Doctor@Med + Researcher@Trial. Bob: Nurse@Med + Auditor@Gov.
    alice_keys.emplace("Med", aa_keygen(*grp, vks.at("Med"), owner_sk, alice, {"Doctor"}));
    alice_keys.emplace("Trial",
                       aa_keygen(*grp, vks.at("Trial"), owner_sk, alice, {"Researcher"}));
    bob_keys.emplace("Med", aa_keygen(*grp, vks.at("Med"), owner_sk, bob, {"Nurse"}));
    bob_keys.emplace("Gov", aa_keygen(*grp, vks.at("Gov"), owner_sk, bob, {"Auditor"}));
  }

  void add_attr(const std::string& aid, const std::string& name) {
    const PublicAttributeKey pk = aa_attribute_key(*grp, vks.at(aid), name);
    attr_pks.emplace(pk.attr.qualified(), pk);
  }

  EncryptionResult enc(const std::string& policy_text, const GT& m,
                       const std::string& id = "ct-1") {
    const LsssMatrix policy = LsssMatrix::from_policy(parse_policy(policy_text));
    return encrypt(*grp, owner_mk, id, m, policy, apks, attr_pks, rng);
  }

  std::shared_ptr<const Group> grp;
  crypto::Drbg rng;
  OwnerMasterKey owner_mk;
  OwnerSecretShare owner_sk;
  std::map<std::string, AuthorityVersionKey> vks;
  std::map<std::string, AuthorityPublicKey> apks;
  std::map<std::string, PublicAttributeKey> attr_pks;
  UserPublicKey alice, bob;
  std::map<std::string, UserSecretKey> alice_keys, bob_keys;
};

TEST_F(SchemeTest, EncryptDecryptSingleAuthority) {
  const GT m = grp->gt_random(rng);
  const auto [ct, rec] = enc("Doctor@Med", m);
  EXPECT_EQ(decrypt(*grp, ct, alice, alice_keys), m);
}

TEST_F(SchemeTest, EncryptDecryptAcrossAuthorities) {
  const GT m = grp->gt_random(rng);
  const auto [ct, rec] = enc("Doctor@Med AND Researcher@Trial", m);
  EXPECT_EQ(ct.involved_authorities(), (std::set<std::string>{"Med", "Trial"}));
  EXPECT_EQ(decrypt(*grp, ct, alice, alice_keys), m);
}

TEST_F(SchemeTest, DecryptFailsWhenPolicyUnsatisfied) {
  const GT m = grp->gt_random(rng);
  const auto [ct, rec] = enc("Doctor@Med AND Auditor@Gov", m);
  // Bob has Auditor@Gov but is a Nurse, not a Doctor.
  EXPECT_FALSE(can_decrypt(*grp, ct, bob_keys));
  EXPECT_THROW(decrypt(*grp, ct, bob, bob_keys), SchemeError);
}

TEST_F(SchemeTest, DecryptFailsWithoutInvolvedAuthorityKey) {
  const GT m = grp->gt_random(rng);
  // Policy satisfiable by Alice's attributes alone (OR), but it also
  // involves Gov, from which Alice has no key at all.
  const auto [ct, rec] = enc("Doctor@Med OR Auditor@Gov", m);
  EXPECT_FALSE(can_decrypt(*grp, ct, alice_keys));
  EXPECT_THROW(decrypt(*grp, ct, alice, alice_keys), SchemeError);
}

TEST_F(SchemeTest, OrPolicyEitherBranchDecrypts) {
  const GT m = grp->gt_random(rng);
  {
    const auto [ct, rec] = enc("Doctor@Med OR Nurse@Med", m);
    EXPECT_EQ(decrypt(*grp, ct, alice, alice_keys), m);
    std::map<std::string, UserSecretKey> bob_med{{"Med", bob_keys.at("Med")}};
    EXPECT_EQ(decrypt(*grp, ct, bob, bob_med), m);
  }
}

TEST_F(SchemeTest, ComplexNestedPolicy) {
  const GT m = grp->gt_random(rng);
  const auto [ct, rec] =
      enc("(Doctor@Med AND Researcher@Trial) OR (Nurse@Med AND Auditor@Gov)", m);
  // Decryption requires K_{UID,AID} from *every* involved authority
  // (the paper's numerator ranges over all of I_A), so users holding
  // only one branch's attributes still need empty-attribute keys from
  // the other branch's authorities.
  auto alice_full = alice_keys;
  alice_full.emplace("Gov", aa_keygen(*grp, vks.at("Gov"), owner_sk, alice, {}));
  auto bob_full = bob_keys;
  bob_full.emplace("Trial", aa_keygen(*grp, vks.at("Trial"), owner_sk, bob, {}));
  EXPECT_EQ(decrypt(*grp, ct, alice, alice_full), m);
  EXPECT_EQ(decrypt(*grp, ct, bob, bob_full), m);
  // A user with only partial attributes from each branch fails.
  auto carol = ca_register_user(*grp, "carol", rng);
  std::map<std::string, UserSecretKey> carol_keys;
  carol_keys.emplace("Med", aa_keygen(*grp, vks.at("Med"), owner_sk, carol, {"Doctor"}));
  carol_keys.emplace("Gov", aa_keygen(*grp, vks.at("Gov"), owner_sk, carol, {"Auditor"}));
  carol_keys.emplace("Trial", aa_keygen(*grp, vks.at("Trial"), owner_sk, carol, {"Reviewer"}));
  EXPECT_THROW(decrypt(*grp, ct, carol, carol_keys), SchemeError);
}

TEST_F(SchemeTest, CollusionMixedKeysYieldGarbage) {
  // The paper's central claim (Theorem 1): users with different UIDs
  // cannot pool keys. Alice contributes Doctor@Med, Bob contributes
  // Auditor@Gov; together the attributes satisfy the policy, but the
  // UID binding makes the combined decryption come out wrong.
  const GT m = grp->gt_random(rng);
  const auto [ct, rec] = enc("Doctor@Med AND Auditor@Gov", m);

  std::map<std::string, UserSecretKey> pooled;
  pooled.emplace("Med", alice_keys.at("Med"));
  pooled.emplace("Gov", bob_keys.at("Gov"));

  // Mechanically the algorithm runs (attributes satisfy the policy) but
  // the output must NOT be the message, under either user's public key.
  const GT out_alice = decrypt(*grp, ct, alice, pooled);
  const GT out_bob = decrypt(*grp, ct, bob, pooled);
  EXPECT_NE(out_alice, m);
  EXPECT_NE(out_bob, m);
}

TEST_F(SchemeTest, SameUserKeysFromDifferentAuthoritiesDoCombine) {
  // The flip side of collusion resistance: one UID's keys tie together.
  const GT m = grp->gt_random(rng);
  const auto [ct, rec] = enc("Doctor@Med AND Researcher@Trial", m);
  EXPECT_EQ(decrypt(*grp, ct, alice, alice_keys), m);
}

TEST_F(SchemeTest, DecryptRejectsForeignOwnerKeys) {
  // Keys issued under a different owner's SK_o must be rejected.
  const OwnerMasterKey mk2 = owner_gen(*grp, "owner-2", rng);
  const OwnerSecretShare sk2 = owner_share(*grp, mk2);
  std::map<std::string, UserSecretKey> foreign;
  foreign.emplace("Med", aa_keygen(*grp, vks.at("Med"), sk2, alice, {"Doctor"}));

  const GT m = grp->gt_random(rng);
  const auto [ct, rec] = enc("Doctor@Med", m);
  EXPECT_THROW(decrypt(*grp, ct, alice, foreign), SchemeError);
}

TEST_F(SchemeTest, RandomizedEncryption) {
  const GT m = grp->gt_random(rng);
  const auto r1 = enc("Doctor@Med", m, "ct-a");
  const auto r2 = enc("Doctor@Med", m, "ct-b");
  EXPECT_NE(r1.ct.c, r2.ct.c);
  EXPECT_NE(r1.ct.c_prime, r2.ct.c_prime);
  EXPECT_NE(r1.record.s, r2.record.s);
}

TEST_F(SchemeTest, EncryptValidatesInputs) {
  const GT m = grp->gt_random(rng);
  // Missing authority public key.
  std::map<std::string, AuthorityPublicKey> missing_auth = apks;
  missing_auth.erase("Gov");
  const LsssMatrix policy = LsssMatrix::from_policy(parse_policy("Auditor@Gov"));
  EXPECT_THROW(encrypt(*grp, owner_mk, "x", m, policy, missing_auth, attr_pks, rng),
               SchemeError);
  // Missing attribute key.
  std::map<std::string, PublicAttributeKey> missing_attr = attr_pks;
  missing_attr.erase("Auditor@Gov");
  EXPECT_THROW(encrypt(*grp, owner_mk, "x", m, policy, apks, missing_attr, rng),
               SchemeError);
}

TEST_F(SchemeTest, CiphertextStructure) {
  const GT m = grp->gt_random(rng);
  const auto [ct, rec] = enc("(Doctor@Med AND Researcher@Trial) OR Nurse@Med", m);
  EXPECT_EQ(ct.ci.size(), 3u);  // one C_i per policy row
  EXPECT_EQ(ct.owner_id, "owner-1");
  EXPECT_EQ(ct.versions.size(), 2u);
  EXPECT_EQ(ct.versions.at("Med"), 1u);
}

// ---------------------------------------------------------------------
// Attribute revocation (paper Section V-C).
// ---------------------------------------------------------------------

class RevocationTest : public SchemeTest {
 protected:
  // Revokes "Doctor" from alice at Med, runs the full protocol over the
  // given ciphertext, and returns the updated world pieces.
  struct RevocationOutcome {
    AuthorityVersionKey new_vk;
    UpdateKey uk;                       // for owner-1
    UserSecretKey alice_regenerated;    // reduced attribute set
    std::map<std::string, UserSecretKey> bob_updated;
    std::map<std::string, AuthorityPublicKey> new_apks;
    std::map<std::string, PublicAttributeKey> new_attr_pks;
  };

  RevocationOutcome revoke_doctor_from_alice(Ciphertext* ct, const EncryptionRecord& rec) {
    RevocationOutcome out;
    const AuthorityVersionKey& old_vk = vks.at("Med");
    out.new_vk = aa_rekey(*grp, old_vk, rng).new_vk;

    // Revoked user gets a fresh key for the reduced set (loses Doctor).
    out.alice_regenerated = aa_regenerate_key(*grp, out.new_vk, owner_sk, alice, {});

    // Everyone else applies the update key.
    out.uk = aa_make_update_key(*grp, old_vk, out.new_vk, owner_sk);
    out.bob_updated = bob_keys;
    out.bob_updated.at("Med") =
        apply_update_to_secret_key(*grp, bob_keys.at("Med"), out.uk);

    // Owner updates its public keys.
    out.new_apks = apks;
    out.new_apks.at("Med") = apply_update_to_authority_pk(*grp, apks.at("Med"), out.uk);
    out.new_attr_pks = attr_pks;
    for (auto& [handle, pk] : out.new_attr_pks) {
      if (pk.attr.aid == "Med")
        pk = apply_update_to_attribute_pk(*grp, pk, out.uk);
    }

    // Owner builds UpdateInfo; server re-encrypts.
    if (ct != nullptr) {
      const UpdateInfo ui =
          owner_update_info(*grp, owner_mk, rec, *ct, attr_pks, out.new_attr_pks, "Med");
      reencrypt(*grp, ct, out.uk, ui);
    }
    return out;
  }
};

TEST_F(RevocationTest, NonRevokedUserDecryptsReencryptedCiphertext) {
  const GT m = grp->gt_random(rng);
  auto [ct, rec] = enc("Nurse@Med AND Auditor@Gov", m);
  const auto world = revoke_doctor_from_alice(&ct, rec);
  EXPECT_EQ(ct.versions.at("Med"), 2u);
  EXPECT_EQ(decrypt(*grp, ct, bob, world.bob_updated), m);
}

TEST_F(RevocationTest, RevokedUserStaleKeyRejected) {
  const GT m = grp->gt_random(rng);
  auto [ct, rec] = enc("Doctor@Med", m);
  revoke_doctor_from_alice(&ct, rec);
  // Alice's old (version 1) key no longer matches the re-encrypted CT.
  EXPECT_THROW(decrypt(*grp, ct, alice, alice_keys), SchemeError);
}

TEST_F(RevocationTest, RevokedUserRegeneratedKeyLacksAttribute) {
  const GT m = grp->gt_random(rng);
  auto [ct, rec] = enc("Doctor@Med", m);
  const auto world = revoke_doctor_from_alice(&ct, rec);
  std::map<std::string, UserSecretKey> alice_new;
  alice_new.emplace("Med", world.alice_regenerated);
  EXPECT_THROW(decrypt(*grp, ct, alice, alice_new), SchemeError);
}

TEST_F(RevocationTest, NewEncryptionsUseNewKeysAndExcludeRevokedUser) {
  const GT m = grp->gt_random(rng);
  const auto world = revoke_doctor_from_alice(nullptr, EncryptionRecord{});
  const LsssMatrix policy = LsssMatrix::from_policy(parse_policy("Nurse@Med"));
  const auto [ct2, rec2] =
      encrypt(*grp, owner_mk, "ct-new", m, policy, world.new_apks, world.new_attr_pks, rng);
  EXPECT_EQ(ct2.versions.at("Med"), 2u);
  EXPECT_EQ(decrypt(*grp, ct2, bob, world.bob_updated), m);
  // Alice's stale version-1 keys cannot decrypt version-2 ciphertexts.
  EXPECT_THROW(decrypt(*grp, ct2, alice, alice_keys), SchemeError);
}

TEST_F(RevocationTest, NewlyJoinedUserDecryptsOldReencryptedData) {
  // Forward access: data published before a user joins must remain
  // decryptable after re-encryption (paper Section V-C intro).
  const GT m = grp->gt_random(rng);
  auto [ct, rec] = enc("Nurse@Med", m);
  const auto world = revoke_doctor_from_alice(&ct, rec);

  const UserPublicKey dave = ca_register_user(*grp, "dave", rng);
  std::map<std::string, UserSecretKey> dave_keys;
  dave_keys.emplace("Med", aa_keygen(*grp, world.new_vk, owner_sk, dave, {"Nurse"}));
  EXPECT_EQ(decrypt(*grp, ct, dave, dave_keys), m);
}

TEST_F(RevocationTest, ReencryptOnlyTouchesAffectedRows) {
  const GT m = grp->gt_random(rng);
  auto [ct, rec] = enc("(Nurse@Med AND Auditor@Gov) OR Researcher@Trial", m);
  const std::vector<pairing::G1> before = ct.ci;
  revoke_doctor_from_alice(&ct, rec);
  // Row attributes: Nurse@Med (0), Auditor@Gov (1), Researcher@Trial (2).
  EXPECT_NE(ct.ci[0], before[0]);  // Med row re-encrypted
  EXPECT_EQ(ct.ci[1], before[1]);  // Gov row untouched
  EXPECT_EQ(ct.ci[2], before[2]);  // Trial row untouched
}

TEST_F(RevocationTest, SequentialRevocationsCompose) {
  const GT m = grp->gt_random(rng);
  auto [ct, rec] = enc("Nurse@Med", m);

  // Two consecutive version bumps at Med.
  auto w1 = revoke_doctor_from_alice(&ct, rec);
  vks.at("Med") = w1.new_vk;
  apks = w1.new_apks;
  attr_pks = w1.new_attr_pks;
  bob_keys = w1.bob_updated;
  auto w2 = revoke_doctor_from_alice(&ct, rec);

  EXPECT_EQ(ct.versions.at("Med"), 3u);
  EXPECT_EQ(decrypt(*grp, ct, bob, w2.bob_updated), m);
}

TEST_F(RevocationTest, UpdateValidationCatchesMisuse) {
  const AuthorityVersionKey& old_vk = vks.at("Med");
  const AuthorityVersionKey new_vk = aa_rekey(*grp, old_vk, rng).new_vk;
  EXPECT_EQ(new_vk.version, 2u);
  EXPECT_NE(new_vk.alpha, old_vk.alpha);

  const UpdateKey uk = aa_make_update_key(*grp, old_vk, new_vk, owner_sk);
  // Applying to a key of the wrong authority / wrong version throws.
  EXPECT_THROW(apply_update_to_secret_key(*grp, bob_keys.at("Gov"), uk), SchemeError);
  UserSecretKey already = apply_update_to_secret_key(*grp, bob_keys.at("Med"), uk);
  EXPECT_THROW(apply_update_to_secret_key(*grp, already, uk), SchemeError);
  EXPECT_THROW(apply_update_to_authority_pk(*grp, apks.at("Gov"), uk), SchemeError);
  // Non-consecutive versions rejected.
  const AuthorityVersionKey skipped{old_vk.aid, old_vk.version + 2, new_vk.alpha};
  EXPECT_THROW(aa_make_update_key(*grp, old_vk, skipped, owner_sk), SchemeError);
}

TEST_F(RevocationTest, ReencryptValidatesInputs) {
  const GT m = grp->gt_random(rng);
  auto [ct, rec] = enc("Nurse@Med", m);
  auto [ct_other, rec_other] = enc("Nurse@Med", m, "ct-2");

  const AuthorityVersionKey& old_vk = vks.at("Med");
  const AuthorityVersionKey new_vk = aa_rekey(*grp, old_vk, rng).new_vk;
  const UpdateKey uk = aa_make_update_key(*grp, old_vk, new_vk, owner_sk);
  std::map<std::string, PublicAttributeKey> new_pks = attr_pks;
  for (auto& [h, pk] : new_pks)
    if (pk.attr.aid == "Med") pk = apply_update_to_attribute_pk(*grp, pk, uk);
  const UpdateInfo ui = owner_update_info(*grp, owner_mk, rec, ct, attr_pks, new_pks, "Med");

  // UpdateInfo targeted at ct cannot re-encrypt ct_other.
  EXPECT_THROW(reencrypt(*grp, &ct_other, uk, ui), SchemeError);
  // Happy path works, double-application is rejected by versioning.
  reencrypt(*grp, &ct, uk, ui);
  EXPECT_THROW(reencrypt(*grp, &ct, uk, ui), SchemeError);
}

TEST_F(RevocationTest, OwnerUpdateInfoValidatesRecord) {
  const GT m = grp->gt_random(rng);
  auto [ct, rec] = enc("Nurse@Med", m);
  EncryptionRecord wrong = rec;
  wrong.ct_id = "someone-else";
  EXPECT_THROW(owner_update_info(*grp, owner_mk, wrong, ct, attr_pks, attr_pks, "Med"),
               SchemeError);
}

}  // namespace
}  // namespace maabe::abe
