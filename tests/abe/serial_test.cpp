#include "abe/serial.h"

#include <gtest/gtest.h>

#include "abe/scheme.h"
#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::abe {
namespace {

using lsss::LsssMatrix;
using lsss::parse_policy;
using pairing::Group;
using pairing::GT;

class SerialTest : public ::testing::Test {
 protected:
  SerialTest() : grp(Group::test_small()), rng("serial-test") {
    mk = owner_gen(*grp, "owner", rng);
    share = owner_share(*grp, mk);
    vk = aa_setup(*grp, "Med", rng);
    user = ca_register_user(*grp, "alice", rng);
  }

  std::shared_ptr<const Group> grp;
  crypto::Drbg rng;
  OwnerMasterKey mk;
  OwnerSecretShare share;
  AuthorityVersionKey vk;
  UserPublicKey user;
};

TEST_F(SerialTest, UserPublicKeyRoundTrip) {
  const Bytes b = serialize(*grp, user);
  const UserPublicKey back = deserialize_user_public_key(*grp, b);
  EXPECT_EQ(back.uid, user.uid);
  EXPECT_EQ(back.pk, user.pk);
}

TEST_F(SerialTest, OwnerSecretShareRoundTrip) {
  const Bytes b = serialize(*grp, share);
  const OwnerSecretShare back = deserialize_owner_secret_share(*grp, b);
  EXPECT_EQ(back.owner_id, share.owner_id);
  EXPECT_EQ(back.g_inv_beta, share.g_inv_beta);
  EXPECT_EQ(back.r_over_beta, share.r_over_beta);
}

TEST_F(SerialTest, AuthorityPublicKeyRoundTrip) {
  const AuthorityPublicKey pk = aa_public_key(*grp, vk);
  const AuthorityPublicKey back =
      deserialize_authority_public_key(*grp, serialize(*grp, pk));
  EXPECT_EQ(back.aid, pk.aid);
  EXPECT_EQ(back.version, pk.version);
  EXPECT_EQ(back.e_gg_alpha, pk.e_gg_alpha);
}

TEST_F(SerialTest, PublicAttributeKeyRoundTrip) {
  const PublicAttributeKey pk = aa_attribute_key(*grp, vk, "Doctor");
  const PublicAttributeKey back =
      deserialize_public_attribute_key(*grp, serialize(*grp, pk));
  EXPECT_EQ(back.attr.qualified(), "Doctor@Med");
  EXPECT_EQ(back.key, pk.key);
}

TEST_F(SerialTest, UserSecretKeyRoundTrip) {
  const UserSecretKey sk = aa_keygen(*grp, vk, share, user, {"Doctor", "Nurse"});
  const UserSecretKey back = deserialize_user_secret_key(*grp, serialize(*grp, sk));
  EXPECT_EQ(back.uid, sk.uid);
  EXPECT_EQ(back.aid, sk.aid);
  EXPECT_EQ(back.owner_id, sk.owner_id);
  EXPECT_EQ(back.version, sk.version);
  EXPECT_EQ(back.k, sk.k);
  ASSERT_EQ(back.kx.size(), 2u);
  EXPECT_EQ(back.kx.at("Doctor@Med"), sk.kx.at("Doctor@Med"));
  EXPECT_EQ(back.attributes(), sk.attributes());
}

TEST_F(SerialTest, CiphertextRoundTripAndDecrypts) {
  std::map<std::string, AuthorityPublicKey> apks{{"Med", aa_public_key(*grp, vk)}};
  std::map<std::string, PublicAttributeKey> attr_pks;
  for (const char* n : {"Doctor", "Nurse"}) {
    const auto pk = aa_attribute_key(*grp, vk, n);
    attr_pks.emplace(pk.attr.qualified(), pk);
  }
  const GT m = grp->gt_random(rng);
  const LsssMatrix policy = LsssMatrix::from_policy(parse_policy("Doctor@Med AND Nurse@Med"));
  const auto [ct, rec] = encrypt(*grp, mk, "ct-1", m, policy, apks, attr_pks, rng);

  const Ciphertext back = deserialize_ciphertext(*grp, serialize(*grp, ct));
  EXPECT_EQ(back.id, ct.id);
  EXPECT_EQ(back.owner_id, ct.owner_id);
  EXPECT_EQ(back.c, ct.c);
  EXPECT_EQ(back.c_prime, ct.c_prime);
  ASSERT_EQ(back.ci.size(), ct.ci.size());
  for (size_t i = 0; i < ct.ci.size(); ++i) EXPECT_EQ(back.ci[i], ct.ci[i]);
  EXPECT_EQ(back.versions, ct.versions);
  EXPECT_EQ(back.policy.policy_text(), ct.policy.policy_text());

  // The deserialized ciphertext decrypts.
  std::map<std::string, UserSecretKey> keys;
  keys.emplace("Med", aa_keygen(*grp, vk, share, user, {"Doctor", "Nurse"}));
  EXPECT_EQ(decrypt(*grp, back, user, keys), m);
}

TEST_F(SerialTest, UpdateKeyAndInfoRoundTrip) {
  const AuthorityVersionKey new_vk = aa_rekey(*grp, vk, rng).new_vk;
  const UpdateKey uk = aa_make_update_key(*grp, vk, new_vk, share);
  const UpdateKey uk2 = deserialize_update_key(*grp, serialize(*grp, uk));
  EXPECT_EQ(uk2.aid, uk.aid);
  EXPECT_EQ(uk2.owner_id, uk.owner_id);
  EXPECT_EQ(uk2.from_version, 1u);
  EXPECT_EQ(uk2.to_version, 2u);
  EXPECT_EQ(uk2.uk1, uk.uk1);
  EXPECT_EQ(uk2.uk2, uk.uk2);

  UpdateInfo ui;
  ui.aid = "Med";
  ui.owner_id = "owner";
  ui.ct_id = "ct-1";
  ui.from_version = 1;
  ui.to_version = 2;
  ui.ui.emplace("Doctor@Med", grp->g1_random(rng));
  const UpdateInfo ui2 = deserialize_update_info(*grp, serialize(*grp, ui));
  EXPECT_EQ(ui2.ct_id, "ct-1");
  EXPECT_EQ(ui2.ui.at("Doctor@Med"), ui.ui.at("Doctor@Med"));
}

TEST_F(SerialTest, UpdateKeySubgroupCheckDependsOnReceiver) {
  const AuthorityVersionKey new_vk = aa_rekey(*grp, vk, rng).new_vk;
  UpdateKey uk = aa_make_update_key(*grp, vk, new_vk, share);

  // Forge an on-curve point outside the order-r subgroup (decompression
  // never checks membership, and a random x lands in the subgroup only
  // with probability r / (q+1)).
  pairing::G1 rogue;
  for (uint8_t i = 1;; ++i) {
    Bytes enc(grp->g1_size(), 0);
    enc[enc.size() - 2] = i;  // low x byte; sign flag 0
    try {
      rogue = grp->g1_from_bytes(enc);
    } catch (const WireError&) {
      continue;  // x not on the curve, try the next one
    }
    if (!rogue.in_subgroup()) break;
  }
  uk.uk1 = rogue;
  const Bytes b = serialize(*grp, uk);

  // Users fold the UK into key material: off-subgroup points rejected.
  EXPECT_THROW(deserialize_update_key(*grp, b), WireError);
  // The server only injects uk1 into ciphertext components — same trust
  // model as per-row ciphertext points, so on-curve suffices.
  const UpdateKey accepted = deserialize_update_key(*grp, b, UkCheck::kCiphertextPath);
  EXPECT_EQ(accepted.uk1, rogue);

  // A point off the curve entirely is rejected on both paths.
  Bytes off = b;
  // uk1's y coordinate sits just before its flag byte inside the
  // uncompressed encoding; flipping it breaks the curve equation.
  const size_t zr = grp->zr_size();
  off[off.size() - zr - 2] ^= 0x5a;
  EXPECT_THROW(deserialize_update_key(*grp, off, UkCheck::kCiphertextPath), WireError);
}

TEST_F(SerialTest, SecretMaterialRoundTrips) {
  const OwnerMasterKey mk2 = deserialize_owner_master_key(*grp, serialize(*grp, mk));
  EXPECT_EQ(mk2.owner_id, mk.owner_id);
  EXPECT_EQ(mk2.beta, mk.beta);
  EXPECT_EQ(mk2.r, mk.r);

  const AuthorityVersionKey vk2 =
      deserialize_authority_version_key(*grp, serialize(*grp, vk));
  EXPECT_EQ(vk2.aid, vk.aid);
  EXPECT_EQ(vk2.version, vk.version);
  EXPECT_EQ(vk2.alpha, vk.alpha);

  EncryptionRecord rec{"ct-9", grp->zr_random(rng)};
  const EncryptionRecord rec2 = deserialize_encryption_record(*grp, serialize(*grp, rec));
  EXPECT_EQ(rec2.ct_id, "ct-9");
  EXPECT_EQ(rec2.s, rec.s);
}

TEST_F(SerialTest, SecretMaterialRejectsDegenerateValues) {
  // A zero beta or alpha would make the key material useless; the
  // decoders reject it outright.
  OwnerMasterKey zero_mk = mk;
  zero_mk.beta = grp->zr_zero();
  EXPECT_THROW(deserialize_owner_master_key(*grp, serialize(*grp, zero_mk)), WireError);
  AuthorityVersionKey zero_vk = vk;
  zero_vk.alpha = grp->zr_zero();
  EXPECT_THROW(deserialize_authority_version_key(*grp, serialize(*grp, zero_vk)),
               WireError);
}

TEST_F(SerialTest, WrongTagRejected) {
  const Bytes b = serialize(*grp, user);
  EXPECT_THROW(deserialize_ciphertext(*grp, b), WireError);
  EXPECT_THROW(deserialize_user_secret_key(*grp, b), WireError);
}

TEST_F(SerialTest, TruncationRejected) {
  const UserSecretKey sk = aa_keygen(*grp, vk, share, user, {"Doctor"});
  const Bytes b = serialize(*grp, sk);
  for (size_t len : {size_t{0}, size_t{1}, b.size() / 2, b.size() - 1}) {
    EXPECT_THROW(deserialize_user_secret_key(*grp, ByteView(b.data(), len)), WireError)
        << len;
  }
}

TEST_F(SerialTest, TrailingGarbageRejected) {
  Bytes b = serialize(*grp, user);
  b.push_back(0);
  EXPECT_THROW(deserialize_user_public_key(*grp, b), WireError);
}

TEST_F(SerialTest, CorruptedPointRejected) {
  Bytes b = serialize(*grp, user);
  // Flip a byte inside the point encoding; decompression or the sign
  // flag check must fail with overwhelming probability. Try several
  // positions to be robust against the rare "still on curve" case.
  int rejected = 0;
  for (size_t pos = b.size() - grp->g1_size(); pos < b.size(); ++pos) {
    Bytes bad = b;
    bad[pos] ^= 0x5a;
    try {
      (void)deserialize_user_public_key(*grp, bad);
    } catch (const WireError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST_F(SerialTest, GroupMaterialBytesFormula) {
  std::map<std::string, AuthorityPublicKey> apks{{"Med", aa_public_key(*grp, vk)}};
  std::map<std::string, PublicAttributeKey> attr_pks;
  for (const char* n : {"Doctor", "Nurse", "Admin"}) {
    const auto pk = aa_attribute_key(*grp, vk, n);
    attr_pks.emplace(pk.attr.qualified(), pk);
  }
  const LsssMatrix policy =
      LsssMatrix::from_policy(parse_policy("Doctor@Med AND Nurse@Med AND Admin@Med"));
  const auto [ct, rec] =
      encrypt(*grp, mk, "x", grp->gt_random(rng), policy, apks, attr_pks, rng);
  // |GT| + (l+1)|G| with l = 3.
  EXPECT_EQ(ciphertext_group_material_bytes(*grp, ct),
            grp->gt_size() + 4 * grp->g1_size());
}

}  // namespace
}  // namespace maabe::abe
