// End-to-end property tests: for a corpus of policies, the REAL
// cryptographic encrypt/decrypt must agree with the boolean semantics of
// the policy on strategically chosen attribute subsets (all through the
// pairing math, not just the LSSS solver).
#include <gtest/gtest.h>

#include "abe/scheme.h"
#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::abe {
namespace {

using lsss::Attribute;
using lsss::LsssMatrix;
using lsss::parse_policy;
using pairing::Group;
using pairing::GT;

struct Universe {
  std::shared_ptr<const Group> grp = Group::test_small();
  crypto::Drbg rng{std::string_view("e2e-prop")};
  OwnerMasterKey mk;
  OwnerSecretShare sk_o;
  std::map<std::string, AuthorityVersionKey> vks;
  std::map<std::string, AuthorityPublicKey> apks;
  std::map<std::string, PublicAttributeKey> attr_pks;
  int next_uid = 0;

  Universe() {
    mk = owner_gen(*grp, "owner", rng);
    sk_o = owner_share(*grp, mk);
  }

  void ensure(const Attribute& attr) {
    if (!vks.contains(attr.aid)) {
      const auto vk = aa_setup(*grp, attr.aid, rng);
      apks.emplace(attr.aid, aa_public_key(*grp, vk));
      vks.emplace(attr.aid, vk);
    }
    if (!attr_pks.contains(attr.qualified())) {
      const auto pk = aa_attribute_key(*grp, vks.at(attr.aid), attr.name);
      attr_pks.emplace(pk.attr.qualified(), pk);
    }
  }

  // Creates a fresh user holding exactly `have`, plus (empty) keys from
  // every authority in `involved` so the numerator is computable.
  std::pair<UserPublicKey, std::map<std::string, UserSecretKey>> make_user(
      const std::set<Attribute>& have, const std::set<std::string>& involved) {
    const UserPublicKey pk =
        ca_register_user(*grp, "u" + std::to_string(next_uid++), rng);
    std::map<std::string, std::set<std::string>> by_aid;
    for (const std::string& aid : involved) by_aid[aid];
    for (const Attribute& a : have) by_aid[a.aid].insert(a.name);
    std::map<std::string, UserSecretKey> keys;
    for (const auto& [aid, names] : by_aid) {
      keys.emplace(aid, aa_keygen(*grp, vks.at(aid), sk_o, pk, names));
    }
    return {pk, keys};
  }
};

class E2eProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(E2eProperty, CryptoAgreesWithBooleanSemantics) {
  Universe uni;
  const auto policy_ast = parse_policy(GetParam());
  const std::vector<Attribute> leaves = policy_ast->leaves();
  std::set<Attribute> distinct(leaves.begin(), leaves.end());
  for (const Attribute& a : distinct) uni.ensure(a);
  const std::set<std::string> involved = policy_ast->involved_authorities();

  const LsssMatrix policy = LsssMatrix::from_policy(policy_ast, true);
  const GT message = uni.grp->gt_random(uni.rng);
  const auto [ct, rec] = encrypt(*uni.grp, uni.mk, "ct", message, policy, uni.apks,
                                 uni.attr_pks, uni.rng);

  // Subsets to probe: full set, empty set, each single attribute, each
  // leave-one-out set, and a few pseudo-random subsets. Exhaustive
  // enumeration through real pairings would be too slow.
  std::vector<std::set<Attribute>> probes;
  probes.push_back(distinct);
  probes.emplace_back();
  std::vector<Attribute> ordered(distinct.begin(), distinct.end());
  for (size_t i = 0; i < ordered.size(); ++i) {
    probes.push_back({ordered[i]});
    std::set<Attribute> loo = distinct;
    loo.erase(ordered[i]);
    probes.push_back(loo);
  }
  crypto::Drbg subset_rng(std::string_view("subsets"));
  for (int k = 0; k < 4; ++k) {
    std::set<Attribute> s;
    for (const Attribute& a : ordered) {
      if (subset_rng.bytes(1)[0] & 1) s.insert(a);
    }
    probes.push_back(std::move(s));
  }

  for (const auto& have : probes) {
    const bool expect = policy_ast->satisfied_by(have);
    auto [upk, keys] = uni.make_user(have, involved);
    EXPECT_EQ(can_decrypt(*uni.grp, ct, keys), expect)
        << GetParam() << " subset size " << have.size();
    if (expect) {
      EXPECT_EQ(decrypt(*uni.grp, ct, upk, keys), message) << GetParam();
    } else {
      EXPECT_THROW((void)decrypt(*uni.grp, ct, upk, keys), SchemeError) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, E2eProperty,
    ::testing::Values(
        "a@A",
        "a@A AND b@B",
        "a@A OR b@B",
        "(a@A AND b@B) OR c@C",
        "(a@A OR b@B) AND (c@C OR d@A)",
        "a@A AND b@A AND c@B AND d@B",
        "2of(a@A, b@B, c@C)",
        "(a@A AND b@B) OR (c@C AND d@D)",
        "a@A AND (b@B OR (c@C AND d@D))",
        "2of(a@A AND x@A, b@B, c@C)"));

TEST(E2eExtra, ThresholdPolicyThroughFullCrypto) {
  // Attribute reuse (threshold expansion) exercised through the real
  // scheme: 2-of-3 across three authorities.
  Universe uni;
  const auto ast = parse_policy("2of(a@A, b@B, c@C)");
  for (const auto& leaf : ast->leaves()) uni.ensure(leaf);
  const LsssMatrix policy = LsssMatrix::from_policy(ast, true);
  const GT m = uni.grp->gt_random(uni.rng);
  const auto [ct, rec] =
      encrypt(*uni.grp, uni.mk, "t", m, policy, uni.apks, uni.attr_pks, uni.rng);

  auto [u1, k1] = uni.make_user({{"a", "A"}, {"c", "C"}}, ast->involved_authorities());
  EXPECT_EQ(decrypt(*uni.grp, ct, u1, k1), m);
  auto [u2, k2] = uni.make_user({{"b", "B"}}, ast->involved_authorities());
  EXPECT_THROW((void)decrypt(*uni.grp, ct, u2, k2), SchemeError);
}

TEST(E2eExtra, ManyAuthoritiesRoundTrip) {
  // Scale check: 8 authorities, one attribute each, AND policy.
  Universe uni;
  std::string text;
  std::set<Attribute> all;
  for (int k = 0; k < 8; ++k) {
    const Attribute a{"x", "AA" + std::to_string(k)};
    all.insert(a);
    uni.ensure(a);
    if (!text.empty()) text += " AND ";
    text += a.qualified();
  }
  const auto ast = parse_policy(text);
  const LsssMatrix policy = LsssMatrix::from_policy(ast);
  const GT m = uni.grp->gt_random(uni.rng);
  const auto [ct, rec] =
      encrypt(*uni.grp, uni.mk, "m", m, policy, uni.apks, uni.attr_pks, uni.rng);
  auto [upk, keys] = uni.make_user(all, ast->involved_authorities());
  EXPECT_EQ(keys.size(), 8u);
  EXPECT_EQ(decrypt(*uni.grp, ct, upk, keys), m);
}

TEST(E2eExtra, SameMessageManyPoliciesIndependent) {
  // One GT message encrypted under different policies produces
  // independent ciphertexts; cross-decryption yields the right message
  // in each case.
  Universe uni;
  const Attribute a{"a", "A"}, b{"b", "B"};
  uni.ensure(a);
  uni.ensure(b);
  const GT m = uni.grp->gt_random(uni.rng);
  const auto ct1 = encrypt(*uni.grp, uni.mk, "c1", m,
                           LsssMatrix::from_policy(parse_policy("a@A")), uni.apks,
                           uni.attr_pks, uni.rng);
  const auto ct2 = encrypt(*uni.grp, uni.mk, "c2", m,
                           LsssMatrix::from_policy(parse_policy("b@B")), uni.apks,
                           uni.attr_pks, uni.rng);
  EXPECT_NE(ct1.ct.c, ct2.ct.c);
  auto [u1, k1] = uni.make_user({a}, {"A"});
  auto [u2, k2] = uni.make_user({b}, {"B"});
  EXPECT_EQ(decrypt(*uni.grp, ct1.ct, u1, k1), m);
  EXPECT_EQ(decrypt(*uni.grp, ct2.ct, u2, k2), m);
}

}  // namespace
}  // namespace maabe::abe
