// File-based keystore for the maabe command-line tool.
//
// Single-host demo layout under a --home directory:
//
//   group.params                     curve parameters (q, r, h hex)
//   ca/users/<uid>.pk                UserPublicKey
//   aa/<aid>/state                   authority state (version key,
//                                    universe, assignments)
//   owners/<id>/master               OwnerMasterKey        (secret)
//   owners/<id>/share                OwnerSecretShare      (for AAs)
//   owners/<id>/records/<ct>         EncryptionRecord      (secret)
//   owners/<id>/cts/<ct>             owner's ciphertext copy
//   users/<uid>/keys/<owner>__<aid>  UserSecretKey         (secret)
//   server/<file_id>                 StoredFile
//
// Entity identifiers are restricted to [A-Za-z0-9_.-] so they can
// double as path components without escaping. Ciphertext ids are the
// exception: hybrid slot ids are "<file_id>/<component>" (see
// cloud::slot_ct_id), so they additionally allow '/' and are
// percent-encoded (encode_ct_id) before being used as a path leaf —
// "f1/data" is stored as "f1%2Fdata".
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "abe/types.h"
#include "common/bytes.h"
#include "pairing/group.h"

namespace maabe::tools {

/// Persistent authority state beyond the bare version key.
struct AuthorityState {
  abe::AuthorityVersionKey vk;
  std::set<std::string> universe;
  std::map<std::string, std::set<std::string>> assignments;  // uid -> names
};

class Keystore {
 public:
  explicit Keystore(std::filesystem::path home);

  const std::filesystem::path& home() const { return home_; }

  /// Throws SchemeError when the id contains characters unsafe for a
  /// path component.
  static void validate_id(const std::string& id);

  /// Ciphertext-id variant: also accepts '/' (hybrid slot ids are
  /// "<file_id>/<component>"); such ids must be percent-encoded before
  /// use in a path.
  static void validate_ct_id(const std::string& id);

  /// Bijective percent-encoding of a ct id into a safe path leaf:
  /// characters outside [A-Za-z0-9_.-] (and '%' itself) become %XX.
  static std::string encode_ct_id(const std::string& id);
  /// Inverse of encode_ct_id; throws SchemeError on malformed %-escapes.
  static std::string decode_ct_id(const std::string& name);

  // ---- group -----------------------------------------------------------
  void init_group(const pairing::TypeAParams& params);
  /// Loads (and caches) the group; throws if init was never run.
  std::shared_ptr<const pairing::Group> group();
  bool initialized() const;

  // ---- CA / users ------------------------------------------------------
  void save_user_pk(const abe::UserPublicKey& pk);
  abe::UserPublicKey load_user_pk(const std::string& uid);
  bool has_user(const std::string& uid) const;
  std::vector<std::string> list_users() const;

  // ---- authorities -----------------------------------------------------
  void save_authority(const AuthorityState& state);
  AuthorityState load_authority(const std::string& aid);
  bool has_authority(const std::string& aid) const;
  std::vector<std::string> list_authorities() const;

  // ---- owners ----------------------------------------------------------
  void save_owner(const abe::OwnerMasterKey& mk, const abe::OwnerSecretShare& share);
  abe::OwnerMasterKey load_owner_master(const std::string& owner_id);
  abe::OwnerSecretShare load_owner_share(const std::string& owner_id);
  bool has_owner(const std::string& owner_id) const;
  std::vector<std::string> list_owners() const;

  void save_record(const std::string& owner_id, const abe::EncryptionRecord& rec);
  abe::EncryptionRecord load_record(const std::string& owner_id, const std::string& ct_id);
  void save_owner_ciphertext(const std::string& owner_id, const abe::Ciphertext& ct);
  abe::Ciphertext load_owner_ciphertext(const std::string& owner_id,
                                        const std::string& ct_id);
  std::vector<std::string> list_owner_ciphertexts(const std::string& owner_id) const;

  // ---- user secret keys --------------------------------------------------
  void save_user_key(const abe::UserSecretKey& sk);
  std::optional<abe::UserSecretKey> load_user_key(const std::string& uid,
                                                  const std::string& owner_id,
                                                  const std::string& aid);
  /// All keys the user holds for one owner, keyed by AID.
  std::map<std::string, abe::UserSecretKey> load_user_keys_for_owner(
      const std::string& uid, const std::string& owner_id);
  void delete_user_key(const std::string& uid, const std::string& owner_id,
                       const std::string& aid);

  // ---- server ------------------------------------------------------------
  // The `node` overloads address one replica shard of a multi-node CLI
  // deployment (`maabe-cli --nodes N`): files live under
  // server/<node>/<file_id>. An empty node id selects the legacy
  // single-server layout server/<file_id>, which is what the two-arg
  // forms use.
  void save_server_file(const std::string& file_id, ByteView bytes);
  Bytes load_server_file(const std::string& file_id);
  bool has_server_file(const std::string& file_id) const;
  std::vector<std::string> list_server_files() const;
  void save_server_file(const std::string& node, const std::string& file_id,
                        ByteView bytes);
  Bytes load_server_file(const std::string& node, const std::string& file_id);
  bool has_server_file(const std::string& node, const std::string& file_id) const;
  std::vector<std::string> list_server_files(const std::string& node) const;

 private:
  Bytes read(const std::filesystem::path& rel) const;
  void write(const std::filesystem::path& rel, ByteView data);
  std::vector<std::string> list_dir(const std::filesystem::path& rel) const;

  std::filesystem::path home_;
  std::shared_ptr<const pairing::Group> group_;
};

}  // namespace maabe::tools
