#include "keystore.h"

#include <algorithm>
#include <fstream>

#include "abe/serial.h"
#include "common/errors.h"

namespace maabe::tools {

namespace fs = std::filesystem;

Keystore::Keystore(fs::path home) : home_(std::move(home)) {}

void Keystore::validate_id(const std::string& id) {
  if (id.empty() || id.size() > 128)
    throw SchemeError("keystore: identifier must be 1..128 characters");
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok)
      throw SchemeError("keystore: identifier '" + id +
                        "' contains characters outside [A-Za-z0-9_.-]");
  }
  if (id == "." || id == "..") throw SchemeError("keystore: reserved identifier");
}

namespace {

bool plain_id_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_' || c == '.' || c == '-';
}

}  // namespace

void Keystore::validate_ct_id(const std::string& id) {
  if (id.empty() || id.size() > 192)
    throw SchemeError("keystore: ciphertext id must be 1..192 characters");
  for (char c : id) {
    if (!plain_id_char(c) && c != '/')
      throw SchemeError("keystore: ciphertext id '" + id +
                        "' contains characters outside [A-Za-z0-9_.-/]");
  }
  if (id == "." || id == "..") throw SchemeError("keystore: reserved identifier");
}

std::string Keystore::encode_ct_id(const std::string& id) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    if (plain_id_char(c)) {
      out.push_back(c);
    } else {
      const auto b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(hex[b >> 4]);
      out.push_back(hex[b & 0xF]);
    }
  }
  return out;
}

std::string Keystore::decode_ct_id(const std::string& name) {
  const auto nibble = [&](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw SchemeError("keystore: malformed %-escape in '" + name + "'");
  };
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    if (name[i] != '%') {
      out.push_back(name[i]);
      continue;
    }
    if (i + 2 >= name.size())
      throw SchemeError("keystore: truncated %-escape in '" + name + "'");
    out.push_back(static_cast<char>((nibble(name[i + 1]) << 4) | nibble(name[i + 2])));
    i += 2;
  }
  return out;
}

Bytes Keystore::read(const fs::path& rel) const {
  const fs::path path = home_ / rel;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SchemeError("keystore: cannot read " + path.string());
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return data;
}

void Keystore::write(const fs::path& rel, ByteView data) {
  const fs::path path = home_ / rel;
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SchemeError("keystore: cannot write " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw SchemeError("keystore: short write to " + path.string());
}

std::vector<std::string> Keystore::list_dir(const fs::path& rel) const {
  std::vector<std::string> out;
  const fs::path dir = home_ / rel;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- group ---------------------------------------------------------------

void Keystore::init_group(const pairing::TypeAParams& params) {
  Writer w;
  w.str("maabe-type-a-params-v1");
  w.str(params.q.to_hex());
  w.str(params.r.to_hex());
  w.str(params.h.to_hex());
  write("group.params", w.bytes());
}

bool Keystore::initialized() const { return fs::exists(home_ / "group.params"); }

std::shared_ptr<const pairing::Group> Keystore::group() {
  if (group_) return group_;
  if (!initialized())
    throw SchemeError("keystore: not initialized (run 'maabe-cli init' first)");
  const Bytes data = read("group.params");
  Reader r(data);
  if (r.str() != "maabe-type-a-params-v1")
    throw WireError("keystore: unrecognized group.params header");
  pairing::TypeAParams params;
  params.q = math::Bignum::from_hex(r.str());
  params.r = math::Bignum::from_hex(r.str());
  params.h = math::Bignum::from_hex(r.str());
  r.expect_done();
  group_ = pairing::Group::create(params);
  return group_;
}

// ---- CA / users ------------------------------------------------------------

void Keystore::save_user_pk(const abe::UserPublicKey& pk) {
  validate_id(pk.uid);
  write(fs::path("ca/users") / (pk.uid + ".pk"), abe::serialize(*group(), pk));
}

abe::UserPublicKey Keystore::load_user_pk(const std::string& uid) {
  validate_id(uid);
  return abe::deserialize_user_public_key(*group(),
                                          read(fs::path("ca/users") / (uid + ".pk")));
}

bool Keystore::has_user(const std::string& uid) const {
  return fs::exists(home_ / "ca/users" / (uid + ".pk"));
}

std::vector<std::string> Keystore::list_users() const {
  std::vector<std::string> out;
  for (std::string name : list_dir("ca/users")) {
    if (name.size() > 3 && name.ends_with(".pk")) out.push_back(name.substr(0, name.size() - 3));
  }
  return out;
}

// ---- authorities -------------------------------------------------------------

void Keystore::save_authority(const AuthorityState& state) {
  validate_id(state.vk.aid);
  Writer w;
  w.var_bytes(abe::serialize(*group(), state.vk));
  w.u32(static_cast<uint32_t>(state.universe.size()));
  for (const std::string& name : state.universe) w.str(name);
  w.u32(static_cast<uint32_t>(state.assignments.size()));
  for (const auto& [uid, names] : state.assignments) {
    w.str(uid);
    w.u32(static_cast<uint32_t>(names.size()));
    for (const std::string& name : names) w.str(name);
  }
  write(fs::path("aa") / state.vk.aid / "state", w.bytes());
}

AuthorityState Keystore::load_authority(const std::string& aid) {
  validate_id(aid);
  const Bytes data = read(fs::path("aa") / aid / "state");
  Reader r(data);
  AuthorityState state;
  state.vk = abe::deserialize_authority_version_key(*group(), r.var_bytes());
  const uint32_t nu = r.u32();
  for (uint32_t i = 0; i < nu; ++i) state.universe.insert(r.str());
  const uint32_t na = r.u32();
  for (uint32_t i = 0; i < na; ++i) {
    const std::string uid = r.str();
    const uint32_t nn = r.u32();
    std::set<std::string> names;
    for (uint32_t j = 0; j < nn; ++j) names.insert(r.str());
    state.assignments.emplace(uid, std::move(names));
  }
  r.expect_done();
  return state;
}

bool Keystore::has_authority(const std::string& aid) const {
  return fs::exists(home_ / "aa" / aid / "state");
}

std::vector<std::string> Keystore::list_authorities() const { return list_dir("aa"); }

// ---- owners -------------------------------------------------------------------

void Keystore::save_owner(const abe::OwnerMasterKey& mk,
                          const abe::OwnerSecretShare& share) {
  validate_id(mk.owner_id);
  write(fs::path("owners") / mk.owner_id / "master", abe::serialize(*group(), mk));
  write(fs::path("owners") / mk.owner_id / "share", abe::serialize(*group(), share));
}

abe::OwnerMasterKey Keystore::load_owner_master(const std::string& owner_id) {
  validate_id(owner_id);
  return abe::deserialize_owner_master_key(*group(),
                                           read(fs::path("owners") / owner_id / "master"));
}

abe::OwnerSecretShare Keystore::load_owner_share(const std::string& owner_id) {
  validate_id(owner_id);
  return abe::deserialize_owner_secret_share(*group(),
                                             read(fs::path("owners") / owner_id / "share"));
}

bool Keystore::has_owner(const std::string& owner_id) const {
  return fs::exists(home_ / "owners" / owner_id / "master");
}

std::vector<std::string> Keystore::list_owners() const { return list_dir("owners"); }

void Keystore::save_record(const std::string& owner_id, const abe::EncryptionRecord& rec) {
  validate_id(owner_id);
  validate_ct_id(rec.ct_id);
  write(fs::path("owners") / owner_id / "records" / encode_ct_id(rec.ct_id),
        abe::serialize(*group(), rec));
}

abe::EncryptionRecord Keystore::load_record(const std::string& owner_id,
                                            const std::string& ct_id) {
  validate_id(owner_id);
  validate_ct_id(ct_id);
  return abe::deserialize_encryption_record(
      *group(), read(fs::path("owners") / owner_id / "records" / encode_ct_id(ct_id)));
}

void Keystore::save_owner_ciphertext(const std::string& owner_id,
                                     const abe::Ciphertext& ct) {
  validate_id(owner_id);
  validate_ct_id(ct.id);
  write(fs::path("owners") / owner_id / "cts" / encode_ct_id(ct.id),
        abe::serialize(*group(), ct));
}

abe::Ciphertext Keystore::load_owner_ciphertext(const std::string& owner_id,
                                                const std::string& ct_id) {
  validate_id(owner_id);
  validate_ct_id(ct_id);
  return abe::deserialize_ciphertext(
      *group(), read(fs::path("owners") / owner_id / "cts" / encode_ct_id(ct_id)));
}

std::vector<std::string> Keystore::list_owner_ciphertexts(
    const std::string& owner_id) const {
  std::vector<std::string> out;
  for (const std::string& name : list_dir(fs::path("owners") / owner_id / "cts"))
    out.push_back(decode_ct_id(name));
  return out;
}

// ---- user secret keys ------------------------------------------------------------

void Keystore::save_user_key(const abe::UserSecretKey& sk) {
  validate_id(sk.uid);
  validate_id(sk.owner_id);
  validate_id(sk.aid);
  write(fs::path("users") / sk.uid / "keys" / (sk.owner_id + "__" + sk.aid),
        abe::serialize(*group(), sk));
}

std::optional<abe::UserSecretKey> Keystore::load_user_key(const std::string& uid,
                                                          const std::string& owner_id,
                                                          const std::string& aid) {
  validate_id(uid);
  validate_id(owner_id);
  validate_id(aid);
  const fs::path rel = fs::path("users") / uid / "keys" / (owner_id + "__" + aid);
  if (!fs::exists(home_ / rel)) return std::nullopt;
  return abe::deserialize_user_secret_key(*group(), read(rel));
}

std::map<std::string, abe::UserSecretKey> Keystore::load_user_keys_for_owner(
    const std::string& uid, const std::string& owner_id) {
  std::map<std::string, abe::UserSecretKey> out;
  const std::string prefix = owner_id + "__";
  for (const std::string& name : list_dir(fs::path("users") / uid / "keys")) {
    if (!name.starts_with(prefix)) continue;
    abe::UserSecretKey sk = abe::deserialize_user_secret_key(
        *group(), read(fs::path("users") / uid / "keys" / name));
    out.emplace(sk.aid, std::move(sk));
  }
  return out;
}

void Keystore::delete_user_key(const std::string& uid, const std::string& owner_id,
                               const std::string& aid) {
  fs::remove(home_ / "users" / uid / "keys" / (owner_id + "__" + aid));
}

// ---- server ------------------------------------------------------------------------

namespace {
// "" = legacy single-server layout; otherwise one node's shard.
fs::path server_shard(const std::string& node) {
  return node.empty() ? fs::path("server") : fs::path("server") / node;
}
}  // namespace

void Keystore::save_server_file(const std::string& file_id, ByteView bytes) {
  save_server_file("", file_id, bytes);
}

Bytes Keystore::load_server_file(const std::string& file_id) {
  return load_server_file("", file_id);
}

bool Keystore::has_server_file(const std::string& file_id) const {
  return has_server_file("", file_id);
}

std::vector<std::string> Keystore::list_server_files() const { return list_dir("server"); }

void Keystore::save_server_file(const std::string& node, const std::string& file_id,
                                ByteView bytes) {
  if (!node.empty()) validate_id(node);
  validate_id(file_id);
  write(server_shard(node) / file_id, bytes);
}

Bytes Keystore::load_server_file(const std::string& node, const std::string& file_id) {
  if (!node.empty()) validate_id(node);
  validate_id(file_id);
  return read(server_shard(node) / file_id);
}

bool Keystore::has_server_file(const std::string& node,
                               const std::string& file_id) const {
  return fs::exists(home_ / server_shard(node) / file_id);
}

std::vector<std::string> Keystore::list_server_files(const std::string& node) const {
  return list_dir(server_shard(node));
}

}  // namespace maabe::tools
