// maabe-loadgen: command-line front end for the workload harness.
//
// Synthesizes a mixed store/download/revoke/churn stream against a
// multi-node CloudSystem (Zipf file popularity, user churn, scripted
// revocation storms and node kill/restart), prints a per-op-class
// latency/outcome table and writes BENCH_workload.json.
//
// Quick start (fast insecure curve):
//   MAABE_BENCH_SMALL=1 maabe-loadgen --ops 400 --storm-at 150 \
//       --storm-size 4 --kill-at 200 --kill-node 1 --restart-at 300
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_json.h"
#include "loadgen/loadgen.h"

namespace {

using maabe::loadgen::LoadGenerator;
using maabe::loadgen::OpStats;
using maabe::loadgen::ScenarioEvent;
using maabe::loadgen::WorkloadConfig;
using maabe::loadgen::WorkloadReport;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --authorities N       attribute authorities (default 2)\n"
      "  --attributes N        attributes per authority (default 2)\n"
      "  --users N             initial user pool (default 8)\n"
      "  --set-size N          users per attribute set (default 2)\n"
      "  --files N             file universe (default 16)\n"
      "  --nodes N             cluster nodes (default 3)\n"
      "  --replication N       copies per file (default 2)\n"
      "  --pending-cap N       per-destination durable-queue cap (default lib)\n"
      "  --ops N               total ops (default 200)\n"
      "  --zipf S              file popularity skew (default 1.1)\n"
      "  --seed N              traffic seed (default 42)\n"
      "  --storm-at OP         fire a revocation storm before op OP\n"
      "  --storm-size N        revocations in the storm (default 4)\n"
      "  --kill-at OP          kill a node before op OP\n"
      "  --kill-node I         node index to kill/restart (default 1)\n"
      "  --restart-at OP       restart the killed node before op OP\n"
      "  --rejoin-at OP        restart via the recovery protocol before op OP,\n"
      "                        timing convergence and bytes moved\n"
      "  --recovery-stats      print the recovery section after the run\n"
      "  --slo SPEC            track objectives, e.g.\n"
      "                        download_p99_ms=250,epoch_commit_ms=2000@0.95,error_rate=0.01\n"
      "  --status-out PATH     write the aggregated cluster status JSON after the run\n"
      "  --small               use the fast insecure curve (or MAABE_BENCH_SMALL=1)\n",
      argv0);
}

void print_stats(const char* cls, const OpStats& s) {
  std::printf("  %-9s %7llu %7llu %7llu %9llu %9llu %7llu  %8.2f %8.2f %8.2f\n",
              cls, static_cast<unsigned long long>(s.attempts()),
              static_cast<unsigned long long>(s.ok),
              static_cast<unsigned long long>(s.denied),
              static_cast<unsigned long long>(s.degraded),
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(s.errors), s.percentile(50),
              s.percentile(95), s.percentile(99));
}

maabe::bench::Json slo_json(const maabe::telemetry::SloStatus& s) {
  maabe::bench::Json j;
  j.put("objective", s.objective)
      .put("threshold_ms", s.threshold_ms)
      .put("samples", s.samples)
      .put("bad", s.bad)
      .put("burn_short", s.burn_short)
      .put("burn_long", s.burn_long)
      .put("met", s.met ? 1 : 0);
  return j;
}

maabe::bench::Json stats_json(const OpStats& s) {
  maabe::bench::Json j;
  j.put("attempts", s.attempts())
      .put("ok", s.ok)
      .put("denied", s.denied)
      .put("degraded", s.degraded)
      .put("rejected", s.rejected)
      .put("errors", s.errors)
      .put("p50_ms", s.percentile(50))
      .put("p95_ms", s.percentile(95))
      .put("p99_ms", s.percentile(99));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadConfig cfg;
  size_t storm_at = 0, storm_size = 4, kill_at = 0, restart_at = 0;
  size_t rejoin_at = 0, kill_node = 1;
  bool has_storm = false, has_kill = false, has_restart = false;
  bool has_rejoin = false, recovery_stats = false;
  std::string status_out;
  bool small = std::getenv("MAABE_BENCH_SMALL") != nullptr &&
               std::getenv("MAABE_BENCH_SMALL")[0] == '1';

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--authorities") cfg.authorities = std::strtoull(next(), nullptr, 10);
    else if (arg == "--attributes") cfg.attributes_per_authority = std::strtoull(next(), nullptr, 10);
    else if (arg == "--users") cfg.users = std::strtoull(next(), nullptr, 10);
    else if (arg == "--set-size") cfg.users_per_attribute_set = std::strtoull(next(), nullptr, 10);
    else if (arg == "--files") cfg.files = std::strtoull(next(), nullptr, 10);
    else if (arg == "--nodes") cfg.nodes = std::strtoull(next(), nullptr, 10);
    else if (arg == "--replication") cfg.replication = std::strtoull(next(), nullptr, 10);
    else if (arg == "--pending-cap") cfg.pending_cap = std::strtoull(next(), nullptr, 10);
    else if (arg == "--ops") cfg.ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--zipf") cfg.zipf_s = std::strtod(next(), nullptr);
    else if (arg == "--seed") cfg.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--storm-at") { storm_at = std::strtoull(next(), nullptr, 10); has_storm = true; }
    else if (arg == "--storm-size") storm_size = std::strtoull(next(), nullptr, 10);
    else if (arg == "--kill-at") { kill_at = std::strtoull(next(), nullptr, 10); has_kill = true; }
    else if (arg == "--kill-node") kill_node = std::strtoull(next(), nullptr, 10);
    else if (arg == "--restart-at") { restart_at = std::strtoull(next(), nullptr, 10); has_restart = true; }
    else if (arg == "--rejoin-at") { rejoin_at = std::strtoull(next(), nullptr, 10); has_rejoin = true; }
    else if (arg == "--recovery-stats") recovery_stats = true;
    else if (arg == "--slo") cfg.slo_spec = next();
    else if (arg == "--status-out") status_out = next();
    else if (arg == "--small") small = true;
    else if (arg == "--help" || arg == "-h") { usage(argv[0]); return 0; }
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  const std::string node = "node:" + std::to_string(kill_node);
  if (has_storm)
    cfg.events.push_back({storm_at, ScenarioEvent::Kind::kRevocationStorm, "", storm_size});
  if (has_kill) cfg.events.push_back({kill_at, ScenarioEvent::Kind::kKillNode, node, 0});
  if (has_restart)
    cfg.events.push_back({restart_at, ScenarioEvent::Kind::kRestartNode, node, 0});
  if (has_rejoin)
    cfg.events.push_back({rejoin_at, ScenarioEvent::Kind::kRejoinNode, node, 0});

  auto grp = small ? maabe::pairing::Group::test_small()
                   : maabe::pairing::Group::pbc_a512();
  std::printf("curve: %s\n", small ? "test_small (192-bit, insecure)"
                                   : "pbc_a512 (512-bit, paper setting)");
  std::printf("world: %zu authorities x %zu attrs, %zu users (sets of %zu), "
              "%zu files, %zu nodes (replication %zu), %zu ops\n",
              cfg.authorities, cfg.attributes_per_authority, cfg.users,
              cfg.users_per_attribute_set, cfg.files, cfg.nodes, cfg.replication,
              cfg.ops);

  LoadGenerator gen(grp, cfg);
  gen.setup();
  const WorkloadReport report = gen.run();

  std::printf("\n  %-9s %7s %7s %7s %9s %9s %7s  %8s %8s %8s\n", "op",
              "attempts", "ok", "denied", "degraded", "rejected", "errors",
              "p50(ms)", "p95(ms)", "p99(ms)");
  for (const auto& [cls, stats] : report.per_op) print_stats(cls.c_str(), stats);
  std::printf("\n  total ops %llu in %.3f s -> %.1f op/s  (users now: %zu)\n",
              static_cast<unsigned long long>(report.total_ops),
              report.wall_seconds, report.achieved_qps(), gen.user_count());
  std::printf("  decrypt cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(report.decrypt_cache_hits),
              static_cast<unsigned long long>(report.decrypt_cache_misses));
  std::printf("  admission: %llu queue rejections, %llu replication sheds, "
              "%llu restart prunes\n",
              static_cast<unsigned long long>(report.parked_rejected),
              static_cast<unsigned long long>(report.replication_sheds),
              static_cast<unsigned long long>(report.restart_prunes));
  if (!report.slo.empty()) {
    std::printf("\n  %-18s %9s %9s %7s %10s %10s %5s\n", "slo", "samples",
                "bad", "target", "burn_short", "burn_long", "met");
    for (const auto& s : report.slo) {
      std::printf("  %-18s %9llu %9llu %7.3f %10.3f %10.3f %5s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.samples),
                  static_cast<unsigned long long>(s.bad), s.objective,
                  s.burn_short, s.burn_long, s.met ? "yes" : "NO");
    }
  }
  if (recovery_stats) {
    std::printf("  recovery: %llu rejoins converged in %.2f ms, "
                "%llu files / %llu bytes transferred, "
                "%llu hints replayed, %llu epochs resolved\n",
                static_cast<unsigned long long>(report.rejoins),
                report.recovery_convergence_ms,
                static_cast<unsigned long long>(report.recovery_files_transferred),
                static_cast<unsigned long long>(report.recovery_bytes_transferred),
                static_cast<unsigned long long>(report.recovery_hints_replayed),
                static_cast<unsigned long long>(report.recovery_epochs_resolved));
  }

  maabe::bench::Json per_op;
  for (const auto& [cls, stats] : report.per_op) per_op.put(cls, stats_json(stats));
  maabe::bench::Json root;
  root.put("bench", "workload")
      .put("curve", small ? "test_small" : "pbc_a512")
      .put("ops", report.total_ops)
      .put("wall_seconds", report.wall_seconds)
      .put("achieved_qps", report.achieved_qps())
      .put("per_op", per_op)
      .put("decrypt_cache_hits", report.decrypt_cache_hits)
      .put("decrypt_cache_misses", report.decrypt_cache_misses)
      .put("parked_rejected", report.parked_rejected)
      .put("replication_sheds", report.replication_sheds)
      .put("restart_prunes", report.restart_prunes)
      .put("rejoins", report.rejoins)
      .put("recovery_convergence_ms", report.recovery_convergence_ms)
      .put("recovery_bytes_transferred", report.recovery_bytes_transferred)
      .put("recovery_files_transferred", report.recovery_files_transferred)
      .put("recovery_hints_replayed", report.recovery_hints_replayed)
      .put("recovery_epochs_resolved", report.recovery_epochs_resolved);
  if (!report.slo.empty()) {
    maabe::bench::Json slo;
    for (const auto& s : report.slo) slo.put(s.name, slo_json(s));
    root.put("slo", slo);
    for (const auto& s : report.slo)
      root.put("slo_" + s.name + "_met", s.met ? 1 : 0);
  }
  maabe::bench::write_bench_json("workload_cli", root);
  if (!status_out.empty()) {
    std::FILE* f = std::fopen(status_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open '%s'\n", status_out.c_str());
      return 1;
    }
    const std::string status = gen.system().status_json();
    std::fwrite(status.data(), 1, status.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("  status written to %s\n", status_out.c_str());
  }
  return 0;
}
