// Closed-loop workload harness for the multi-node CloudSystem
// (DESIGN.md §14).
//
// Synthesizes the production traffic the paper's deployment implies:
// many users partitioned into attribute sets, Zipf-skewed file
// popularity, a mixed store/download/revoke stream with user churn, and
// scripted fault scenarios (revocation storms, node kill/restart). The
// driver is closed-loop — one op completes before the next is issued —
// so per-op latency is the full client-observed path through the
// Transport (serialize, frame, retry, quorum read, ABE decrypt).
//
// Every op records an exact latency sample per op class (for precise
// p50/p95/p99 in the report) and mirrors into the telemetry registry
// (maabe_workload_<op>_latency_ns histograms, maabe_workload_ops_total),
// so the same run feeds both BENCH_workload.json and a live scrape.
//
// Determinism: traffic is driven by a seeded Drbg (file choice, op mix,
// user choice) on the system's virtual transport clock. Wall-clock
// latency measurements are the only nondeterministic output.
#pragma once

#include <chrono>

#include "cloud/system.h"
#include "crypto/drbg.h"
#include "telemetry/slo.h"

namespace maabe::loadgen {

/// Zipf(s) over ranks 0..n-1: P(rank) ∝ 1/(rank+1)^s, sampled by
/// inverse CDF from a Drbg. s == 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);
  size_t sample(crypto::Drbg& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

/// A scripted fault injected before the op with index `at_op`.
struct ScenarioEvent {
  enum class Kind {
    kRevocationStorm,  ///< `revocations` back-to-back revoke ops
    kKillNode,         ///< kill `node` (authority outage for its shards)
    kRestartNode,      ///< restart `node` (reconcile + replay)
    kRejoinNode,       ///< restart `node`, timing the recovery protocol
                       ///< (hints + anti-entropy + epoch resolution) and
                       ///< folding the deltas into the report
  };
  size_t at_op = 0;
  Kind kind = Kind::kRevocationStorm;
  std::string node;         ///< kKillNode / kRestartNode
  size_t revocations = 0;   ///< kRevocationStorm burst size
};

struct WorkloadConfig {
  // ---- world shape ----
  size_t authorities = 2;
  size_t attributes_per_authority = 2;
  /// Initial user pool. Users are partitioned into attribute sets of
  /// `users_per_attribute_set`: set s holds attribute (s mod k) from
  /// every authority, so files (single-attribute policies, round-robin
  /// over the attribute universe) are each openable by 1/k of the pool.
  size_t users = 8;
  size_t users_per_attribute_set = 2;
  size_t files = 16;
  // ---- cluster shape ----
  size_t nodes = 3;
  size_t replication = 2;
  /// Per-destination durable-queue cap (0 = library default).
  size_t pending_cap = 0;
  // ---- traffic ----
  size_t ops = 200;
  double zipf_s = 1.1;          ///< file popularity skew
  double store_weight = 0.15;   ///< owner re-uploads a file (new version)
  double download_weight = 0.72;
  double revoke_weight = 0.03;  ///< attribute revocation (full epoch)
  double churn_weight = 0.10;   ///< enroll a new user (keys issued)
  uint64_t seed = 42;
  /// Replay parked deliveries every N ops (the "background daemon");
  /// 0 disables periodic flushing.
  size_t flush_every = 16;
  std::vector<ScenarioEvent> events;
  /// SLO spec (SloPlane::parse grammar); empty = no objectives tracked.
  /// The harness feeds "download_p99_ms" (downloads), "epoch_commit_ms"
  /// (revocation epochs) and "error_rate" (every op) unconditionally;
  /// this spec decides which of them are scored.
  std::string slo_spec;
};

/// Latency/outcome accounting for one op class.
struct OpStats {
  uint64_t ok = 0;        ///< completed; downloads additionally all_ok
  uint64_t denied = 0;    ///< download opened no slot (revoked/no key)
  uint64_t degraded = 0;  ///< TransportError kDegraded (fail-closed read)
  uint64_t rejected = 0;  ///< TransportError kOverloaded / OverloadError
  uint64_t errors = 0;    ///< any other typed error
  std::vector<double> latencies_ms;  ///< one exact sample per attempt

  uint64_t attempts() const { return ok + denied + degraded + rejected + errors; }
  /// Nearest-rank percentile over the recorded samples; q in [0,100].
  double percentile(double q) const;
};

struct WorkloadReport {
  std::map<std::string, OpStats> per_op;  // "store"/"download"/"revoke"/"churn"
  uint64_t total_ops = 0;
  double wall_seconds = 0;
  double achieved_qps() const {
    return wall_seconds > 0 ? static_cast<double>(total_ops) / wall_seconds : 0.0;
  }
  uint64_t ok_total() const;
  // ---- system-level deltas over the run ----
  uint64_t decrypt_cache_hits = 0;
  uint64_t decrypt_cache_misses = 0;
  uint64_t parked_rejected = 0;    ///< durable-queue cap rejections
  uint64_t replication_sheds = 0;  ///< maintenance ops shed under backpressure
  uint64_t restart_prunes = 0;     ///< parked ops reconciled away on restart

  // ---- recovery (populated by kRejoinNode events) ----
  uint64_t rejoins = 0;                       ///< kRejoinNode events fired
  double recovery_convergence_ms = 0;         ///< wall time of rejoin + replay
  uint64_t recovery_bytes_transferred = 0;    ///< hint + anti-entropy payloads
  uint64_t recovery_files_transferred = 0;
  uint64_t recovery_hints_replayed = 0;
  uint64_t recovery_epochs_resolved = 0;      ///< commit + presumed-abort

  /// SLO state at the end of the run (one entry per configured
  /// objective; empty when no --slo spec was given). Statuses carry
  /// lifetime counters from the generator's plane, so merging keeps
  /// the newest snapshot rather than summing.
  std::vector<telemetry::SloStatus> slo;

  /// Merges another report into this one (for phase-wise runs).
  WorkloadReport& operator+=(const WorkloadReport& o);
};

class LoadGenerator {
 public:
  LoadGenerator(std::shared_ptr<const pairing::Group> grp, WorkloadConfig cfg);

  /// Enrolls the world (authorities, owner, user pool, initial files).
  /// Must be called once before run().
  void setup();

  /// Executes cfg.ops ops, firing scripted events at their indices.
  WorkloadReport run();

  /// Executes `n` ops starting at the current op cursor (events with
  /// at_op inside the window fire). Lets tests drive phases —
  /// pre-outage / outage / recovered — and assert SLOs per phase.
  WorkloadReport run_ops(size_t n);

  cloud::CloudSystem& system() { return *sys_; }
  const WorkloadConfig& config() const { return cfg_; }
  /// Users enrolled so far (pool + churn).
  size_t user_count() const { return user_ids_.size(); }
  /// The SLO plane driven by this generator (empty without a spec).
  const telemetry::SloPlane& slo_plane() const { return slo_; }

 private:
  struct UserState {
    std::string uid;
    size_t attr_index = 0;  ///< which attribute of each authority it holds
    bool revoked = false;   ///< lost its attribute to a revoke op
  };

  std::string aid_of(size_t i) const;
  std::string attr_of(size_t j) const;    ///< unqualified name
  std::string file_of(size_t f) const;
  size_t attr_index_of_file(size_t f) const;
  std::string policy_of(size_t f) const;  ///< single qualified attribute

  double uniform(crypto::Drbg& rng);
  size_t uniform_below(crypto::Drbg& rng, size_t bound);

  void enroll_user(size_t set_index);  ///< register + assign + issue keys
  void upload_file(size_t f);

  void fire_event(const ScenarioEvent& ev, WorkloadReport& report);
  void do_store(WorkloadReport& report);
  void do_download(WorkloadReport& report);
  void do_revoke(WorkloadReport& report);
  void do_churn(WorkloadReport& report);
  /// Runs `fn` under the latency clock and classifies its outcome into
  /// `stats`. `fn` returns false for a denied download, true otherwise.
  void timed(OpStats& stats, const std::string& op_class,
             const std::function<bool()>& fn);

  std::shared_ptr<const pairing::Group> grp_;
  WorkloadConfig cfg_;
  crypto::Drbg rng_;
  std::unique_ptr<cloud::CloudSystem> sys_;
  telemetry::SloPlane slo_;
  ZipfSampler file_zipf_;
  std::vector<UserState> users_;
  std::vector<std::string> user_ids_;
  std::vector<uint64_t> file_revision_;  ///< uploads per file
  size_t op_cursor_ = 0;                 ///< ops executed so far
  bool setup_done_ = false;
};

}  // namespace maabe::loadgen
