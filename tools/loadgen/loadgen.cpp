#include "loadgen/loadgen.h"

#include <algorithm>
#include <cmath>

namespace maabe::loadgen {

using cloud::CloudSystem;

namespace {

/// Registry handles for the workload metrics (one histogram per op
/// class — the registry has no labels, so the class is in the name).
struct WorkloadMetrics {
  telemetry::Counter& ops;
  telemetry::Counter& failures;
  telemetry::Histogram& store_ns;
  telemetry::Histogram& download_ns;
  telemetry::Histogram& revoke_ns;
  telemetry::Histogram& churn_ns;

  static WorkloadMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    const std::vector<uint64_t> bounds = telemetry::Histogram::latency_ns_bounds();
    static WorkloadMetrics* m = new WorkloadMetrics{
        reg.counter("maabe_workload_ops_total"),
        reg.counter("maabe_workload_failures_total"),
        reg.histogram("maabe_workload_store_latency_ns", bounds),
        reg.histogram("maabe_workload_download_latency_ns", bounds),
        reg.histogram("maabe_workload_revoke_latency_ns", bounds),
        reg.histogram("maabe_workload_churn_latency_ns", bounds),
    };
    return *m;
  }

  telemetry::Histogram& for_class(const std::string& op_class) {
    if (op_class == "store") return store_ns;
    if (op_class == "download") return download_ns;
    if (op_class == "revoke") return revoke_ns;
    return churn_ns;
  }
};

}  // namespace

// ----------------------------------------------------- ZipfSampler --

ZipfSampler::ZipfSampler(size_t n, double s) {
  if (n == 0) n = 1;
  cdf_.reserve(n);
  double total = 0;
  for (size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::sample(crypto::Drbg& rng) const {
  const Bytes raw = rng.bytes(8);
  uint64_t u = 0;
  for (size_t i = 0; i < 8; ++i) u = (u << 8) | raw[i];
  // 53 uniform mantissa bits -> [0, 1).
  const double x = static_cast<double>(u >> 11) / 9007199254740992.0;
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<size_t>(it - cdf_.begin());
}

// --------------------------------------------------------- OpStats --

double OpStats::percentile(double q) const {
  if (latencies_ms.empty()) return 0.0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

uint64_t WorkloadReport::ok_total() const {
  uint64_t n = 0;
  for (const auto& [cls, stats] : per_op) n += stats.ok;
  return n;
}

WorkloadReport& WorkloadReport::operator+=(const WorkloadReport& o) {
  for (const auto& [cls, stats] : o.per_op) {
    OpStats& mine = per_op[cls];
    mine.ok += stats.ok;
    mine.denied += stats.denied;
    mine.degraded += stats.degraded;
    mine.rejected += stats.rejected;
    mine.errors += stats.errors;
    mine.latencies_ms.insert(mine.latencies_ms.end(), stats.latencies_ms.begin(),
                             stats.latencies_ms.end());
  }
  total_ops += o.total_ops;
  wall_seconds += o.wall_seconds;
  decrypt_cache_hits += o.decrypt_cache_hits;
  decrypt_cache_misses += o.decrypt_cache_misses;
  parked_rejected += o.parked_rejected;
  replication_sheds += o.replication_sheds;
  restart_prunes += o.restart_prunes;
  rejoins += o.rejoins;
  recovery_convergence_ms += o.recovery_convergence_ms;
  recovery_bytes_transferred += o.recovery_bytes_transferred;
  recovery_files_transferred += o.recovery_files_transferred;
  recovery_hints_replayed += o.recovery_hints_replayed;
  recovery_epochs_resolved += o.recovery_epochs_resolved;
  // SLO statuses are lifetime snapshots of one shared plane: the later
  // phase's snapshot subsumes the earlier one.
  if (!o.slo.empty()) slo = o.slo;
  return *this;
}

// --------------------------------------------------- LoadGenerator --

LoadGenerator::LoadGenerator(std::shared_ptr<const pairing::Group> grp,
                             WorkloadConfig cfg)
    : grp_(std::move(grp)), cfg_(std::move(cfg)),
      rng_("loadgen-" + std::to_string(cfg_.seed)),
      file_zipf_(cfg_.files == 0 ? 1 : cfg_.files, cfg_.zipf_s) {
  if (cfg_.authorities == 0) cfg_.authorities = 1;
  if (cfg_.attributes_per_authority == 0) cfg_.attributes_per_authority = 1;
  if (cfg_.users == 0) cfg_.users = 1;
  if (cfg_.users_per_attribute_set == 0) cfg_.users_per_attribute_set = 1;
  if (cfg_.files == 0) cfg_.files = 1;
  cloud::ClusterConfig cluster;
  cluster.nodes = cfg_.nodes;
  cluster.replication = cfg_.replication;
  sys_ = std::make_unique<CloudSystem>(
      grp_, "loadgen-" + std::to_string(cfg_.seed),
      std::make_unique<cloud::LoopbackTransport>(), cloud::RetryPolicy(), cluster);
  if (cfg_.pending_cap > 0) sys_->set_pending_cap(cfg_.pending_cap);
  if (!cfg_.slo_spec.empty())
    slo_ = telemetry::SloPlane(telemetry::SloPlane::parse(cfg_.slo_spec));
  file_revision_.assign(cfg_.files, 0);
}

std::string LoadGenerator::aid_of(size_t i) const {
  return "A" + std::to_string(i);
}

std::string LoadGenerator::attr_of(size_t j) const {
  return "attr" + std::to_string(j);
}

std::string LoadGenerator::file_of(size_t f) const {
  return "file" + std::to_string(f);
}

size_t LoadGenerator::attr_index_of_file(size_t f) const {
  return f % cfg_.attributes_per_authority;
}

std::string LoadGenerator::policy_of(size_t f) const {
  const size_t j = attr_index_of_file(f);
  const size_t i = (f / cfg_.attributes_per_authority) % cfg_.authorities;
  return attr_of(j) + "@" + aid_of(i);
}

double LoadGenerator::uniform(crypto::Drbg& rng) {
  const Bytes raw = rng.bytes(8);
  uint64_t u = 0;
  for (size_t i = 0; i < 8; ++i) u = (u << 8) | raw[i];
  return static_cast<double>(u >> 11) / 9007199254740992.0;
}

size_t LoadGenerator::uniform_below(crypto::Drbg& rng, size_t bound) {
  if (bound <= 1) return 0;
  return static_cast<size_t>(uniform(rng) * static_cast<double>(bound)) % bound;
}

void LoadGenerator::enroll_user(size_t set_index) {
  const std::string uid = "u" + std::to_string(user_ids_.size());
  const size_t attr_index = set_index % cfg_.attributes_per_authority;
  sys_->add_user(uid);
  for (size_t i = 0; i < cfg_.authorities; ++i) {
    sys_->assign_attributes(aid_of(i), uid, {attr_of(attr_index)});
    sys_->issue_user_key(aid_of(i), uid, "org");
  }
  users_.push_back({uid, attr_index, false});
  user_ids_.push_back(uid);
}

void LoadGenerator::upload_file(size_t f) {
  // Owner-side EncryptionRecords are keyed by (file_id, component), so a
  // re-upload (new version of the file) gets a revision-qualified slot
  // name; the server's store() replaces the whole file either way. The
  // revision is consumed up front: protect() registers the record even
  // when the send is then rejected, so a retry needs a fresh slot name.
  const uint64_t rev = ++file_revision_[f];
  const std::string slot = rev == 1 ? "data" : "data#r" + std::to_string(rev);
  const std::string content = file_of(f) + " rev " + std::to_string(rev);
  sys_->upload("org", file_of(f), {{slot, bytes_of(content), policy_of(f)}});
}

void LoadGenerator::setup() {
  if (setup_done_) return;
  for (size_t i = 0; i < cfg_.authorities; ++i) {
    std::set<std::string> attrs;
    for (size_t j = 0; j < cfg_.attributes_per_authority; ++j)
      attrs.insert(attr_of(j));
    sys_->add_authority(aid_of(i), attrs);
  }
  sys_->add_owner("org");
  for (size_t i = 0; i < cfg_.authorities; ++i)
    sys_->publish_authority_keys(aid_of(i), "org");
  for (size_t u = 0; u < cfg_.users; ++u)
    enroll_user(u / cfg_.users_per_attribute_set);
  for (size_t f = 0; f < cfg_.files; ++f) upload_file(f);
  setup_done_ = true;
}

void LoadGenerator::timed(OpStats& stats, const std::string& op_class,
                          const std::function<bool()>& fn) {
  WorkloadMetrics& metrics = WorkloadMetrics::get();
  const auto start = std::chrono::steady_clock::now();
  enum { kOk, kDenied, kDegraded, kRejected, kError } outcome = kOk;
  try {
    if (!fn()) outcome = kDenied;
  } catch (const TransportError& e) {
    switch (e.kind()) {
      case TransportError::Kind::kDegraded:
        outcome = kDegraded;
        break;
      case TransportError::Kind::kOverloaded:
        outcome = kRejected;
        break;
      default:
        outcome = kError;
        break;
    }
  } catch (const OverloadError&) {
    outcome = kRejected;
  } catch (const Error&) {
    outcome = kError;
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  const double ms = static_cast<double>(ns) / 1e6;
  stats.latencies_ms.push_back(ms);
  metrics.ops.inc();
  metrics.for_class(op_class).observe(static_cast<uint64_t>(ns));
  // SLO feed (no-ops for objectives the spec does not track). A denied
  // download is a correct authorization outcome, not an SLO violation;
  // degraded/rejected/error all burn budget.
  const bool slo_failed = outcome == kDegraded || outcome == kRejected ||
                          outcome == kError;
  if (op_class == "download") slo_.observe("download_p99_ms", ms, slo_failed);
  if (op_class == "revoke") slo_.observe("epoch_commit_ms", ms, slo_failed);
  slo_.observe("error_rate", ms, slo_failed);
  switch (outcome) {
    case kOk:
      ++stats.ok;
      break;
    case kDenied:
      ++stats.denied;
      break;
    case kDegraded:
      ++stats.degraded;
      break;
    case kRejected:
      ++stats.rejected;
      break;
    case kError:
      ++stats.errors;
      metrics.failures.inc();
      break;
  }
}

void LoadGenerator::do_store(WorkloadReport& report) {
  const size_t f = file_zipf_.sample(rng_);
  timed(report.per_op["store"], "store", [&] {
    upload_file(f);
    return true;
  });
}

void LoadGenerator::do_download(WorkloadReport& report) {
  const size_t f = file_zipf_.sample(rng_);
  const size_t want_attr = attr_index_of_file(f);
  // Prefer a user that can actually open the file; fall back to anyone
  // (an authorized denial is a legitimate workload outcome).
  std::vector<size_t> eligible;
  for (size_t i = 0; i < users_.size(); ++i) {
    if (!users_[i].revoked && users_[i].attr_index == want_attr)
      eligible.push_back(i);
  }
  const size_t who = eligible.empty()
                         ? uniform_below(rng_, users_.size())
                         : eligible[uniform_below(rng_, eligible.size())];
  const std::string uid = users_[who].uid;
  timed(report.per_op["download"], "download", [&] {
    const CloudSystem::DownloadReport rep = sys_->download_report(uid, file_of(f));
    if (rep.all_ok()) return true;
    if (rep.any_corrupt())
      throw SchemeError("loadgen: corrupt slot in '" + rep.file_id + "'");
    for (const auto& slot : rep.slots) {
      if (slot.state == CloudSystem::SlotState::kError)
        throw SchemeError("loadgen: slot error: " + slot.detail);
    }
    return false;  // denied (kNoKey) — expected for revoked/ineligible users
  });
}

void LoadGenerator::do_revoke(WorkloadReport& report) {
  // Revoke from the newest non-revoked user whose attribute class keeps
  // at least one other live holder, so the workload never revokes away
  // the last reader of a popularity class.
  size_t victim = users_.size();
  for (size_t i = users_.size(); i-- > 0;) {
    if (users_[i].revoked) continue;
    size_t holders = 0;
    for (const UserState& u : users_) {
      if (!u.revoked && u.attr_index == users_[i].attr_index) ++holders;
    }
    if (holders >= 2) {
      victim = i;
      break;
    }
  }
  if (victim == users_.size()) {
    do_download(report);  // nothing safely revocable; keep the op budget
    return;
  }
  UserState& user = users_[victim];
  const size_t authority = uniform_below(rng_, cfg_.authorities);
  timed(report.per_op["revoke"], "revoke", [&] {
    sys_->revoke_attribute(aid_of(authority), user.uid, attr_of(user.attr_index));
    user.revoked = true;
    return true;
  });
}

void LoadGenerator::do_churn(WorkloadReport& report) {
  const size_t set_index = user_ids_.size() / cfg_.users_per_attribute_set;
  timed(report.per_op["churn"], "churn", [&] {
    enroll_user(set_index);
    return true;
  });
}

void LoadGenerator::fire_event(const ScenarioEvent& ev, WorkloadReport& report) {
  switch (ev.kind) {
    case ScenarioEvent::Kind::kRevocationStorm:
      for (size_t r = 0; r < ev.revocations; ++r) do_revoke(report);
      break;
    case ScenarioEvent::Kind::kKillNode:
      sys_->cluster().kill_node(ev.node);
      break;
    case ScenarioEvent::Kind::kRestartNode:
      sys_->cluster().restart_node(ev.node);
      sys_->flush_pending();  // queue replay — the recovery daemon
      break;
    case ScenarioEvent::Kind::kRejoinNode: {
      // Same restart + replay as kRestartNode, but bracketed by the
      // recovery counters so the report carries how much the rejoin
      // protocol (hint drain + anti-entropy + epoch resolution) moved
      // and how long convergence took.
      const cloud::RecoveryStats before = sys_->cluster().recovery().stats();
      const auto t0 = std::chrono::steady_clock::now();
      sys_->cluster().restart_node(ev.node);
      sys_->flush_pending();
      report.recovery_convergence_ms +=
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const cloud::RecoveryStats after = sys_->cluster().recovery().stats();
      ++report.rejoins;
      report.recovery_bytes_transferred +=
          after.bytes_transferred - before.bytes_transferred;
      report.recovery_files_transferred +=
          after.files_transferred - before.files_transferred;
      report.recovery_hints_replayed +=
          after.hints_replayed - before.hints_replayed;
      report.recovery_epochs_resolved +=
          (after.epochs_resolved_commit + after.epochs_resolved_abort) -
          (before.epochs_resolved_commit + before.epochs_resolved_abort);
      break;
    }
  }
}

WorkloadReport LoadGenerator::run_ops(size_t n) {
  setup();
  WorkloadReport report;
  const uint64_t rejected_before = sys_->parked_rejected_total();
  const uint64_t pruned_before = sys_->parked_pruned_total();
  const cloud::ClusterStats cluster_before = sys_->cluster().stats();
  uint64_t cache_hits_before = 0, cache_misses_before = 0;
  for (const std::string& uid : user_ids_) {
    cache_hits_before += sys_->user(uid).decrypt_cache_hits();
    cache_misses_before += sys_->user(uid).decrypt_cache_misses();
  }

  const double total_weight = cfg_.store_weight + cfg_.download_weight +
                              cfg_.revoke_weight + cfg_.churn_weight;
  const auto wall_start = std::chrono::steady_clock::now();
  const size_t end = op_cursor_ + n;
  for (; op_cursor_ < end; ++op_cursor_) {
    for (const ScenarioEvent& ev : cfg_.events) {
      if (ev.at_op == op_cursor_) fire_event(ev, report);
    }
    const double r = uniform(rng_) * total_weight;
    if (r < cfg_.store_weight) {
      do_store(report);
    } else if (r < cfg_.store_weight + cfg_.download_weight) {
      do_download(report);
    } else if (r < cfg_.store_weight + cfg_.download_weight + cfg_.revoke_weight) {
      do_revoke(report);
    } else {
      do_churn(report);
    }
    if (cfg_.flush_every > 0 && (op_cursor_ + 1) % cfg_.flush_every == 0)
      sys_->flush_pending();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  for (const auto& [cls, stats] : report.per_op) report.total_ops += stats.attempts();

  report.parked_rejected = sys_->parked_rejected_total() - rejected_before;
  report.restart_prunes = sys_->parked_pruned_total() - pruned_before;
  const cloud::ClusterStats cluster_after = sys_->cluster().stats();
  report.replication_sheds =
      cluster_after.replication_sheds - cluster_before.replication_sheds;
  for (const std::string& uid : user_ids_) {
    report.decrypt_cache_hits += sys_->user(uid).decrypt_cache_hits();
    report.decrypt_cache_misses += sys_->user(uid).decrypt_cache_misses();
  }
  report.decrypt_cache_hits -= cache_hits_before;
  report.decrypt_cache_misses -= cache_misses_before;
  if (!slo_.empty()) {
    report.slo = slo_.status();
    slo_.export_gauges();  // burn rates ride the registry snapshot
  }
  return report;
}

WorkloadReport LoadGenerator::run() { return run_ops(cfg_.ops); }

}  // namespace maabe::loadgen
