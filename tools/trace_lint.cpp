// trace-lint — validator for JSONL span streams (maabe-cli --trace-out,
// JsonLinesSink). Checks, per file:
//
//   * every line is a parseable span object with the required fields
//     (trace_id, span_id, parent_id, name, start_ns, end_ns),
//   * span ids are unique,
//   * end_ns >= start_ns on every span,
//   * no orphan parent: every nonzero parent_id names a span_id present
//     in the same file, and the child carries its parent's trace_id.
//
// Exit 0 when every file is clean, 1 with one line per violation
// otherwise (2 for usage errors). CI runs it over the traces the
// observability tests write; operators can point it at any capture.
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct SpanLine {
  size_t lineno = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// Extracts the value of `"key":` in `line` as a u64. The sink emits
/// ids as decimal strings ("123") and clocks as bare numbers; both are
/// accepted. Returns false when the key is absent or non-numeric.
bool extract_u64(const std::string& line, const std::string& key, uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t i = at + needle.size();
  if (i < line.size() && line[i] == '"') ++i;  // string-wrapped id
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  uint64_t v = 0;
  for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i)
    v = v * 10 + static_cast<uint64_t>(line[i] - '0');
  *out = v;
  return true;
}

/// Structural sanity without a full JSON parser: balanced braces and
/// balanced (unescaped) quotes. The emitter writes one object per line,
/// so an unbalanced line means truncation or interleaved writes.
bool balanced(const std::string& line) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

int lint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace-lint: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::vector<SpanLine> spans;
  std::map<uint64_t, size_t> by_span_id;  // span_id -> index into spans
  int violations = 0;
  const auto fail = [&](size_t lineno, const std::string& what) {
    std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineno, what.c_str());
    ++violations;
  };

  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.front() != '{' || line.back() != '}' || !balanced(line)) {
      fail(lineno, "unparseable line (not a balanced JSON object)");
      continue;
    }
    SpanLine s;
    s.lineno = lineno;
    bool ok = true;
    ok &= extract_u64(line, "trace_id", &s.trace_id);
    ok &= extract_u64(line, "span_id", &s.span_id);
    ok &= extract_u64(line, "parent_id", &s.parent_id);
    ok &= extract_u64(line, "start_ns", &s.start_ns);
    ok &= extract_u64(line, "end_ns", &s.end_ns);
    if (!ok || line.find("\"name\":\"") == std::string::npos) {
      fail(lineno, "missing required span field "
                   "(trace_id/span_id/parent_id/name/start_ns/end_ns)");
      continue;
    }
    if (s.span_id == 0) {
      fail(lineno, "span_id 0 (reserved for 'no span')");
      continue;
    }
    if (s.end_ns < s.start_ns)
      fail(lineno, "end_ns " + std::to_string(s.end_ns) + " < start_ns " +
                       std::to_string(s.start_ns));
    const auto [it, fresh] = by_span_id.emplace(s.span_id, spans.size());
    if (!fresh)
      fail(lineno, "duplicate span_id " + std::to_string(s.span_id) +
                       " (first at line " +
                       std::to_string(spans[it->second].lineno) + ")");
    spans.push_back(s);
  }

  // Parent links. Spans are emitted when they END, so a parent always
  // appears after its children — resolve after reading the whole file.
  std::map<uint64_t, size_t> traces;  // trace_id -> span count
  for (const SpanLine& s : spans) {
    ++traces[s.trace_id];
    if (s.parent_id == 0) {
      if (s.trace_id != s.span_id)
        fail(s.lineno, "root span " + std::to_string(s.span_id) +
                           " has trace_id " + std::to_string(s.trace_id));
      continue;
    }
    const auto parent = by_span_id.find(s.parent_id);
    if (parent == by_span_id.end()) {
      fail(s.lineno, "orphan parent_id " + std::to_string(s.parent_id) +
                         " (no such span in this file)");
      continue;
    }
    if (spans[parent->second].trace_id != s.trace_id)
      fail(s.lineno, "span " + std::to_string(s.span_id) + " trace_id " +
                         std::to_string(s.trace_id) +
                         " != parent's trace_id " +
                         std::to_string(spans[parent->second].trace_id));
  }

  if (violations == 0) {
    std::printf("trace-lint: %s OK (%zu spans, %zu traces)\n", path.c_str(),
                spans.size(), traces.size());
    return 0;
  }
  std::fprintf(stderr, "trace-lint: %s FAILED (%d violation%s)\n", path.c_str(),
               violations, violations == 1 ? "" : "s");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace-lint <trace.jsonl>...\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const int r = lint_file(argv[i]);
    if (r > rc) rc = r;
  }
  return rc;
}
