// maabe-cli — a persistent multi-authority access-control deployment on
// the local filesystem.
//
// Walkthrough:
//   maabe-cli --home demo init --test-curve
//   maabe-cli --home demo add-authority MedOrg Doctor Nurse
//   maabe-cli --home demo add-authority TrialAdmin Researcher
//   maabe-cli --home demo add-owner hospital
//   maabe-cli --home demo add-user alice
//   maabe-cli --home demo grant MedOrg alice Doctor
//   maabe-cli --home demo grant TrialAdmin alice Researcher
//   maabe-cli --home demo issue-key MedOrg alice hospital
//   maabe-cli --home demo issue-key TrialAdmin alice hospital
//   echo "secret note" > note.txt
//   maabe-cli --home demo encrypt hospital note1 \
//       "Doctor@MedOrg AND Researcher@TrialAdmin" note.txt
//   maabe-cli --home demo decrypt alice note1 out.txt
//   maabe-cli --home demo revoke MedOrg alice Doctor
//   maabe-cli --home demo decrypt alice note1 out.txt   # now denied
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "abe/scheme.h"
#include "abe/serial.h"
#include "cloud/hybrid.h"
#include "cloud/ring.h"
#include "cloud/transport.h"
#include "common/errors.h"
#include "crypto/random.h"
#include "engine/engine.h"
#include "keystore.h"
#include "lsss/parser.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace maabe::tools {
namespace {

namespace fsys = std::filesystem;

Bytes read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SchemeError("cannot read input file '" + path + "'");
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void write_whole_file(const std::string& path, ByteView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SchemeError("cannot write output file '" + path + "'");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

/// Chaos-testing knobs (see README "Chaos testing"): the server data
/// path (encrypt/decrypt/revoke) runs over a byte-level loopback
/// transport with deterministic fault injection.
struct TransportConfig {
  uint64_t fault_seed = 1;
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  bool show_stats = false;
};

/// Multi-node storage placement (README "Cluster quick-start"): with
/// --nodes N > 1 stored files spread over N storage nodes via the same
/// consistent-hash ring the cluster uses, R replicas each, one shard
/// directory per node (server/node-<i>/). The flags must be repeated on
/// every command touching files — placement is derived, not persisted.
struct PlacementConfig {
  size_t nodes = 1;
  size_t replication = 1;
};

/// Telemetry export destinations (README "Telemetry"). Empty = off.
struct TelemetryConfig {
  std::string metrics_out;  ///< Prometheus text snapshot, written on exit
  std::string trace_out;    ///< JSON-lines span stream, written live
};

struct Cli {
  Keystore store;
  crypto::Drbg rng = crypto::make_system_drbg();
  cloud::LoopbackTransport transport;
  cloud::ReliableLink link{transport};
  cloud::HashRing ring;

  Cli(fsys::path home, const TransportConfig& cfg, const PlacementConfig& placement)
      : store(std::move(home)),
        transport(make_plan(cfg)),
        ring(node_names(placement), placement.replication) {}

  static cloud::FaultPlan make_plan(const TransportConfig& cfg) {
    cloud::FaultPlan plan(cfg.fault_seed);
    cloud::FaultSpec spec;
    spec.drop = cfg.drop_rate;
    spec.corrupt = cfg.corrupt_rate;
    plan.set_default(spec);
    return plan;
  }

  /// Single node keeps the legacy channel name "server"; a real cluster
  /// names its members node-0..node-(N-1).
  static std::vector<std::string> node_names(const PlacementConfig& placement) {
    if (placement.nodes <= 1) return {"server"};
    std::vector<std::string> names;
    for (size_t i = 0; i < placement.nodes; ++i)
      names.push_back("node-" + std::to_string(i));
    return names;
  }

  bool multi_node() const { return ring.nodes().size() > 1; }

  /// Keystore shard for a ring node ("" = legacy server/ layout).
  std::string shard_of(const std::string& node) const {
    return multi_node() ? node : std::string();
  }

  /// Upload leg: the serialized StoredFile travels owner -> every ring
  /// replica of the file, each keeping its own shard copy.
  void server_put(const std::string& owner_id, const std::string& file_id,
                  ByteView wire) {
    for (const std::string& node : ring.replicas_for(file_id)) {
      link.send("owner:" + owner_id, node, wire, [&](ByteView delivered) {
        store.save_server_file(shard_of(node), file_id,
                               Bytes(delivered.begin(), delivered.end()));
      });
    }
  }

  /// Download leg: the stored bytes travel from the first replica
  /// holding the file -> `to`.
  Bytes server_get(const std::string& to, const std::string& file_id) {
    Bytes wire;
    link.send(serving_node(file_id), to, server_load(file_id),
              [&](ByteView delivered) {
                wire.assign(delivered.begin(), delivered.end());
              });
    return wire;
  }

  /// First replica in preference order that holds the file; falls back
  /// to the primary so the keystore raises its usual missing-file error.
  std::string serving_node(const std::string& file_id) const {
    for (const std::string& node : ring.replicas_for(file_id)) {
      if (store.has_server_file(shard_of(node), file_id)) return node;
    }
    return ring.primary_for(file_id);
  }

  Bytes server_load(const std::string& file_id) {
    return store.load_server_file(shard_of(serving_node(file_id)), file_id);
  }

  bool server_has(const std::string& file_id) const {
    for (const std::string& node : ring.nodes()) {
      if (store.has_server_file(shard_of(node), file_id)) return true;
    }
    return false;
  }

  /// Union of all shards (a file appears once, not once per replica).
  std::vector<std::string> server_list() const {
    std::set<std::string> all;
    for (const std::string& node : ring.nodes()) {
      for (const std::string& f : store.list_server_files(shard_of(node)))
        all.insert(f);
    }
    return {all.begin(), all.end()};
  }

  void print_transport_stats() const {
    std::printf("transport stats:\n");
    for (const auto& [channel, s] : transport.meter().entries()) {
      std::printf(
          "  %s -> %s: payload %ju B, frames %ju (%ju B), deliveries %ju, "
          "drops %ju, corruptions %ju, retries %ju, redeliveries %ju\n",
          channel.first.c_str(), channel.second.c_str(),
          static_cast<uintmax_t>(s.payload_bytes), static_cast<uintmax_t>(s.frames),
          static_cast<uintmax_t>(s.frame_bytes), static_cast<uintmax_t>(s.deliveries),
          static_cast<uintmax_t>(s.drops), static_cast<uintmax_t>(s.corruptions),
          static_cast<uintmax_t>(s.retries), static_cast<uintmax_t>(s.redeliveries));
    }
    const cloud::FaultPlan::Injected& injected = transport.faults().injected();
    std::printf("  injected faults: %ju (sends ok %ju, failed %ju)\n",
                static_cast<uintmax_t>(injected.total()),
                static_cast<uintmax_t>(link.sends_ok()),
                static_cast<uintmax_t>(link.sends_failed()));
  }

  int init(const std::vector<std::string>& args) {
    const bool small = !args.empty() && args[0] == "--test-curve";
    if (store.initialized()) throw SchemeError("already initialized");
    store.init_group(small ? pairing::TypeAParams::test_small()
                           : pairing::TypeAParams::pbc_a512());
    std::printf("initialized %s (%s)\n", store.home().string().c_str(),
                small ? "192-bit test curve, INSECURE" : "512-bit type-A curve");
    return 0;
  }

  int add_authority(const std::vector<std::string>& args) {
    if (args.size() < 2) throw SchemeError("usage: add-authority <aid> <attr>...");
    const std::string& aid = args[0];
    if (store.has_authority(aid)) throw SchemeError("authority exists: " + aid);
    AuthorityState state;
    state.vk = abe::aa_setup(*store.group(), aid, rng);
    for (size_t i = 1; i < args.size(); ++i) {
      Keystore::validate_id(args[i]);
      state.universe.insert(args[i]);
    }
    store.save_authority(state);
    std::printf("authority '%s' created (version 1, %zu attributes)\n", aid.c_str(),
                state.universe.size());
    return 0;
  }

  int add_owner(const std::vector<std::string>& args) {
    if (args.size() != 1) throw SchemeError("usage: add-owner <id>");
    if (store.has_owner(args[0])) throw SchemeError("owner exists: " + args[0]);
    const abe::OwnerMasterKey mk = abe::owner_gen(*store.group(), args[0], rng);
    store.save_owner(mk, abe::owner_share(*store.group(), mk));
    std::printf("owner '%s' created; SK_o available to authorities\n", args[0].c_str());
    return 0;
  }

  int add_user(const std::vector<std::string>& args) {
    if (args.size() != 1) throw SchemeError("usage: add-user <uid>");
    if (store.has_user(args[0])) throw SchemeError("user exists: " + args[0]);
    store.save_user_pk(abe::ca_register_user(*store.group(), args[0], rng));
    std::printf("user '%s' registered (global UID assigned by CA)\n", args[0].c_str());
    return 0;
  }

  int grant(const std::vector<std::string>& args) {
    if (args.size() < 3) throw SchemeError("usage: grant <aid> <uid> <attr>...");
    AuthorityState state = store.load_authority(args[0]);
    if (!store.has_user(args[1])) throw SchemeError("unknown user: " + args[1]);
    for (size_t i = 2; i < args.size(); ++i) {
      if (!state.universe.contains(args[i]))
        throw SchemeError("authority '" + args[0] + "' does not manage '" + args[i] + "'");
      state.assignments[args[1]].insert(args[i]);
    }
    store.save_authority(state);
    std::printf("granted %zu attribute(s) at '%s' to '%s'\n", args.size() - 2,
                args[0].c_str(), args[1].c_str());
    return 0;
  }

  int issue_key(const std::vector<std::string>& args) {
    if (args.size() != 3) throw SchemeError("usage: issue-key <aid> <uid> <owner>");
    const AuthorityState state = store.load_authority(args[0]);
    const abe::UserPublicKey user = store.load_user_pk(args[1]);
    const abe::OwnerSecretShare share = store.load_owner_share(args[2]);
    const auto it = state.assignments.find(args[1]);
    const std::set<std::string> attrs =
        it == state.assignments.end() ? std::set<std::string>{} : it->second;
    store.save_user_key(abe::aa_keygen(*store.group(), state.vk, share, user, attrs));
    std::printf("issued key: user '%s', authority '%s' (v%u), owner '%s', %zu attrs\n",
                args[1].c_str(), args[0].c_str(), state.vk.version, args[2].c_str(),
                attrs.size());
    return 0;
  }

  // Builds current public keys for every authority the policy involves.
  void collect_public_keys(const lsss::LsssMatrix& policy,
                           std::map<std::string, abe::AuthorityPublicKey>* apks,
                           std::map<std::string, abe::PublicAttributeKey>* attr_pks) {
    auto grp = store.group();
    std::set<std::string> involved;
    for (const auto& attr : policy.row_attributes()) involved.insert(attr.aid);
    for (const std::string& aid : involved) {
      const AuthorityState state = store.load_authority(aid);
      apks->emplace(aid, abe::aa_public_key(*grp, state.vk));
      for (const std::string& name : state.universe) {
        const auto pk = abe::aa_attribute_key(*grp, state.vk, name);
        attr_pks->emplace(pk.attr.qualified(), pk);
      }
    }
  }

  int encrypt(const std::vector<std::string>& args) {
    if (args.size() != 4)
      throw SchemeError("usage: encrypt <owner> <file-id> <policy> <input-file>");
    auto grp = store.group();
    const abe::OwnerMasterKey mk = store.load_owner_master(args[0]);
    const std::string& file_id = args[1];
    Keystore::validate_id(file_id);
    if (server_has(file_id)) throw SchemeError("file exists: " + file_id);

    const lsss::LsssMatrix policy =
        lsss::LsssMatrix::from_policy(lsss::parse_policy(args[2]));
    std::map<std::string, abe::AuthorityPublicKey> apks;
    std::map<std::string, abe::PublicAttributeKey> attr_pks;
    collect_public_keys(policy, &apks, &attr_pks);

    // Hybrid encryption (Fig. 2), single component per file in the CLI.
    // The ciphertext carries the canonical hybrid slot id
    // "<file_id>/<component>" (cloud::slot_ct_id) — the keystore
    // percent-encodes it for record/ciphertext paths.
    const std::string ct_id = cloud::slot_ct_id(file_id, "data");
    const pairing::GT seed = grp->gt_random(rng);
    abe::EncryptionResult enc =
        abe::encrypt(*grp, mk, ct_id, seed, policy, apks, attr_pks, rng);
    cloud::StoredFile file;
    file.file_id = file_id;
    file.owner_id = args[0];
    cloud::SealedSlot slot;
    slot.component_name = "data";
    slot.key_ct = enc.ct;
    slot.sealed_data = crypto::seal(cloud::content_key_from_gt(seed),
                                    read_whole_file(args[3]),
                                    cloud::slot_aad(file_id, "data"), rng);
    file.slots.push_back(std::move(slot));

    const Bytes wire = cloud::serialize(*grp, file);
    server_put(args[0], file_id, wire);
    store.save_record(args[0], enc.record);
    store.save_owner_ciphertext(args[0], enc.ct);
    std::printf("stored '%s' (%zu bytes) under policy %s\n", file_id.c_str(),
                wire.size(), policy.policy_text().c_str());
    return 0;
  }

  int decrypt(const std::vector<std::string>& args) {
    if (args.size() != 3)
      throw SchemeError("usage: decrypt <uid> <file-id> <output-file>");
    auto grp = store.group();
    const cloud::StoredFile file =
        cloud::deserialize_stored_file(*grp, server_get("user:" + args[0], args[1]));
    const abe::UserPublicKey user = store.load_user_pk(args[0]);
    const auto keys = store.load_user_keys_for_owner(args[0], file.owner_id);
    const cloud::SealedSlot& slot = file.slots.at(0);
    if (!abe::can_decrypt(*grp, slot.key_ct, keys)) {
      std::printf("ACCESS DENIED: '%s' cannot decrypt '%s' (policy %s)\n",
                  args[0].c_str(), args[1].c_str(),
                  slot.key_ct.policy.policy_text().c_str());
      return 2;
    }
    const pairing::GT seed = abe::decrypt(*grp, slot.key_ct, user, keys);
    const Bytes plain =
        crypto::open(cloud::content_key_from_gt(seed), slot.sealed_data,
                     cloud::slot_aad(file.file_id, slot.component_name));
    write_whole_file(args[2], plain);
    std::printf("decrypted '%s' -> '%s' (%zu bytes)\n", args[1].c_str(),
                args[2].c_str(), plain.size());
    return 0;
  }

  int revoke(const std::vector<std::string>& args) {
    if (args.size() != 3) throw SchemeError("usage: revoke <aid> <uid> <attr>");
    auto grp = store.group();
    const std::string &aid = args[0], &uid = args[1], &attr = args[2];

    AuthorityState state = store.load_authority(aid);
    auto assignment = state.assignments.find(uid);
    if (assignment == state.assignments.end() || assignment->second.erase(attr) == 0)
      throw SchemeError("user '" + uid + "' does not hold '" + attr + "' at '" + aid + "'");

    // Phase 1: new version key; per-attribute old/new public keys.
    const abe::AuthorityVersionKey old_vk = state.vk;
    state.vk = abe::aa_rekey(*grp, old_vk, rng).new_vk;
    store.save_authority(state);
    std::map<std::string, abe::PublicAttributeKey> old_pks, new_pks;
    for (const std::string& name : state.universe) {
      const auto op = abe::aa_attribute_key(*grp, old_vk, name);
      old_pks.emplace(op.attr.qualified(), op);
      const auto np = abe::aa_attribute_key(*grp, state.vk, name);
      new_pks.emplace(np.attr.qualified(), np);
    }
    const abe::UserPublicKey revoked_pk = store.load_user_pk(uid);

    size_t keys_updated = 0, cts_reencrypted = 0;
    for (const std::string& owner_id : store.list_owners()) {
      const abe::OwnerSecretShare share = store.load_owner_share(owner_id);
      const abe::UpdateKey uk = abe::aa_make_update_key(*grp, old_vk, state.vk, share);

      // Revoked user: fresh key with the reduced attribute set.
      if (store.load_user_key(uid, owner_id, aid)) {
        store.save_user_key(abe::aa_regenerate_key(*grp, state.vk, share, revoked_pk,
                                                   assignment->second));
      }
      // Everyone else: apply the update key.
      for (const std::string& other : store.list_users()) {
        if (other == uid) continue;
        if (auto sk = store.load_user_key(other, owner_id, aid)) {
          store.save_user_key(abe::apply_update_to_secret_key(*grp, *sk, uk));
          ++keys_updated;
        }
      }

      // Phase 2: owner emits UpdateInfo; "server" re-encrypts in place.
      const abe::OwnerMasterKey mk = store.load_owner_master(owner_id);
      for (const std::string& ct_id : store.list_owner_ciphertexts(owner_id)) {
        abe::Ciphertext ct = store.load_owner_ciphertext(owner_id, ct_id);
        const auto ver = ct.versions.find(aid);
        if (ver == ct.versions.end() || ver->second != old_vk.version) continue;
        const abe::EncryptionRecord rec = store.load_record(owner_id, ct_id);
        const abe::UpdateInfo ui =
            abe::owner_update_info(*grp, mk, rec, ct, old_pks, new_pks, aid);
        abe::reencrypt(*grp, &ct, uk, ui);
        store.save_owner_ciphertext(owner_id, ct);
        // Propagate into the stored file (slot ids are
        // "<file_id>/<component>").
        const std::string file_id = cloud::split_slot_ct_id(ct_id).first;
        cloud::StoredFile file = cloud::deserialize_stored_file(
            *grp, server_get("owner:" + owner_id, file_id));
        for (cloud::SealedSlot& slot : file.slots) {
          if (slot.key_ct.id == ct_id) slot.key_ct = ct;
        }
        server_put(owner_id, file_id, cloud::serialize(*grp, file));
        ++cts_reencrypted;
      }
    }
    std::printf("revoked '%s' from '%s' at '%s': version %u -> %u, "
                "%zu key(s) updated, %zu ciphertext(s) re-encrypted\n",
                attr.c_str(), uid.c_str(), aid.c_str(), old_vk.version,
                state.vk.version, keys_updated, cts_reencrypted);
    return 0;
  }

  int inspect(const std::vector<std::string>& args) {
    if (args.size() != 1) throw SchemeError("usage: inspect <file-id>");
    auto grp = store.group();
    const Bytes wire = server_load(args[0]);
    const cloud::StoredFile file = cloud::deserialize_stored_file(*grp, wire);
    std::printf("file '%s': owner '%s', %zu byte(s) on server\n", file.file_id.c_str(),
                file.owner_id.c_str(), wire.size());
    if (multi_node()) {
      std::printf("  replicas:");
      for (const std::string& node : ring.replicas_for(args[0]))
        std::printf(" %s%s", node.c_str(),
                    store.has_server_file(node, args[0]) ? "" : "(missing)");
      std::printf("\n");
    }
    for (const cloud::SealedSlot& slot : file.slots) {
      std::printf("  component '%s': policy %s\n", slot.component_name.c_str(),
                  slot.key_ct.policy.policy_text().c_str());
      for (const auto& [aid, version] : slot.key_ct.versions)
        std::printf("    authority '%s' at version %u\n", aid.c_str(), version);
      std::printf("    ABE group material %zu B, sealed payload %zu B\n",
                  abe::ciphertext_group_material_bytes(*grp, slot.key_ct),
                  slot.sealed_data.size());
    }
    return 0;
  }

  static void json_str_to(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }

  /// Aggregated observability document (--status): keystore entities,
  /// ring placement with per-shard occupancy, link/transport counters,
  /// and every maabe_slo_* gauge in the registry, as one JSON object.
  int status_json(const std::vector<std::string>&) {
    if (!store.initialized())
      throw SchemeError("keystore not initialized (run 'maabe-cli init' first)");
    std::string out = "{";
    out += "\"home\":";
    json_str_to(out, store.home().string());
    out += ",\"authorities\":[";
    bool first = true;
    for (const auto& aid : store.list_authorities()) {
      const AuthorityState s = store.load_authority(aid);
      if (!first) out += ",";
      first = false;
      out += "{\"aid\":";
      json_str_to(out, aid);
      out += ",\"version\":" + std::to_string(s.vk.version);
      out += ",\"attributes\":" + std::to_string(s.universe.size());
      out += ",\"assignments\":" + std::to_string(s.assignments.size()) + "}";
    }
    out += "],\"owners\":" + std::to_string(store.list_owners().size());
    out += ",\"users\":" + std::to_string(store.list_users().size());
    out += ",\"files\":" + std::to_string(server_list().size());
    out += ",\"cluster\":{\"replication\":" + std::to_string(ring.replication());
    out += ",\"nodes\":[";
    first = true;
    for (const std::string& node : ring.nodes()) {
      if (!first) out += ",";
      first = false;
      out += "{\"node\":";
      json_str_to(out, node);
      out += ",\"files\":" +
             std::to_string(store.list_server_files(shard_of(node)).size()) + "}";
    }
    out += "]}";
    out += ",\"link\":{\"sends_ok\":" + std::to_string(link.sends_ok());
    out += ",\"sends_failed\":" + std::to_string(link.sends_failed());
    out += ",\"retries\":" + std::to_string(link.retries()) + "}";
    // SLO burn-rate gauges (exported by a co-resident SloPlane; absent
    // in a cold CLI process, in which case the object is empty).
    out += ",\"slo_gauges\":{";
    const telemetry::Snapshot snap = telemetry::MetricsRegistry::global().collect();
    first = true;
    for (const auto& [name, value] : snap.gauges) {
      if (!name.starts_with("maabe_slo_")) continue;
      if (!first) out += ",";
      first = false;
      json_str_to(out, name);
      out += ":" + std::to_string(value);
    }
    out += "}}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  int status(const std::vector<std::string>&) {
    if (!store.initialized())
      throw SchemeError("keystore not initialized (run 'maabe-cli init' first)");
    std::printf("keystore: %s\n", store.home().string().c_str());
    std::printf("authorities:");
    for (const auto& aid : store.list_authorities()) {
      const AuthorityState s = store.load_authority(aid);
      std::printf(" %s(v%u,%zu attrs)", aid.c_str(), s.vk.version, s.universe.size());
    }
    std::printf("\nowners:");
    for (const auto& o : store.list_owners()) std::printf(" %s", o.c_str());
    std::printf("\nusers:");
    for (const auto& u : store.list_users()) std::printf(" %s", u.c_str());
    std::printf("\nfiles:");
    for (const auto& f : server_list()) std::printf(" %s", f.c_str());
    std::printf("\n");
    if (multi_node()) {
      std::printf("nodes (R=%zu):", ring.replication());
      for (const std::string& node : ring.nodes())
        std::printf(" %s(%zu)", node.c_str(), store.list_server_files(node).size());
      std::printf("\n");
    }
    return 0;
  }
};

int usage() {
  std::fprintf(stderr,
               "maabe-cli — multi-authority attribute-based access control\n"
               "usage: maabe-cli [--home DIR] [--threads N] [cluster flags] [chaos flags]\n"
               "                 <command> [args]\n\n"
               "  --threads N       crypto engine thread count (default: MAABE_THREADS\n"
               "                    env var, else hardware concurrency; 1 = serial)\n"
               "cluster flags (multi-node storage placement; repeat on every command):\n"
               "  --nodes N         spread stored files over N storage nodes via a\n"
               "                    consistent-hash ring (default 1 = single server)\n"
               "  --replication R   replicas kept per file, clamped to N (default 1)\n"
               "chaos flags (deterministic fault injection on the server data path):\n"
               "  --fault-seed N    seed for the fault schedule (default 1)\n"
               "  --drop-rate P     P(frame lost), 0 <= P <= 1 (default 0)\n"
               "  --corrupt-rate P  P(frame byte flipped), 0 <= P <= 1 (default 0)\n"
               "  --transport-stats print per-channel transport counters on exit\n"
               "telemetry flags:\n"
               "  --metrics-out F   write a Prometheus-style metrics snapshot to F\n"
               "                    on exit (also enables per-op pairing timing)\n"
               "  --trace-out F     stream operation spans to F as JSON lines\n"
               "  --status          print the aggregated observability JSON (entities,\n"
               "                    per-node placement, link counters, maabe_slo_* gauges)\n"
               "                    instead of running a command\n\n"
               "commands:\n"
               "  init [--test-curve]                  create the keystore\n"
               "  add-authority <aid> <attr>...        register an attribute authority\n"
               "  add-owner <id>                       create a data owner\n"
               "  add-user <uid>                       register a user with the CA\n"
               "  grant <aid> <uid> <attr>...          assign attributes to a user\n"
               "  issue-key <aid> <uid> <owner>        issue the user's secret key\n"
               "  encrypt <owner> <id> <policy> <in>   protect + upload a file\n"
               "  decrypt <uid> <id> <out>             download + decrypt a file\n"
               "  revoke <aid> <uid> <attr>            full revocation protocol\n"
               "  inspect <id>                         show a stored file's metadata\n"
               "  status                               list entities and files\n");
  return 64;
}

int run(int argc, char** argv) {
  fsys::path home = "maabe-home";
  TransportConfig transport_cfg;
  PlacementConfig placement_cfg;
  TelemetryConfig telemetry_cfg;
  bool status_flag = false;
  std::vector<std::string> args;
  const auto parse_count = [](const char* flag, const char* value, size_t* out) {
    const int n = std::atoi(value);
    if (n < 1) {
      std::fprintf(stderr, "%s expects a positive integer\n", flag);
      return false;
    }
    *out = static_cast<size_t>(n);
    return true;
  };
  const auto parse_rate = [](const char* flag, const char* value, double* out) {
    char* end = nullptr;
    *out = std::strtod(value, &end);
    if (end == value || *end != '\0' || *out < 0.0 || *out > 1.0) {
      std::fprintf(stderr, "%s expects a probability in [0, 1]\n", flag);
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--home") == 0 && i + 1 < argc) {
      home = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--threads expects a positive integer\n");
        return usage();
      }
      engine::CryptoEngine::set_default_threads(n);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      if (!parse_count("--nodes", argv[++i], &placement_cfg.nodes)) return usage();
    } else if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      if (!parse_count("--replication", argv[++i], &placement_cfg.replication))
        return usage();
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      transport_cfg.fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--drop-rate") == 0 && i + 1 < argc) {
      if (!parse_rate("--drop-rate", argv[++i], &transport_cfg.drop_rate))
        return usage();
    } else if (std::strcmp(argv[i], "--corrupt-rate") == 0 && i + 1 < argc) {
      if (!parse_rate("--corrupt-rate", argv[++i], &transport_cfg.corrupt_rate))
        return usage();
    } else if (std::strcmp(argv[i], "--transport-stats") == 0) {
      transport_cfg.show_stats = true;
    } else if (std::strcmp(argv[i], "--status") == 0) {
      status_flag = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      telemetry_cfg.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      telemetry_cfg.trace_out = argv[++i];
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (status_flag) args.insert(args.begin(), "status-json");
  if (args.empty()) return usage();
  const std::string cmd = args.front();
  args.erase(args.begin());

  // Telemetry setup before any crypto runs: per-op pairing timing feeds
  // the histogram series in the metrics snapshot, and the tracer streams
  // spans (flushed per line) even if the command throws.
  if (!telemetry_cfg.metrics_out.empty()) telemetry::set_op_timing(true);
  if (!telemetry_cfg.trace_out.empty())
    telemetry::Tracer::global().enable(telemetry::JsonLinesSink(telemetry_cfg.trace_out));
  const auto export_telemetry = [&]() {
    if (!telemetry_cfg.trace_out.empty()) telemetry::Tracer::global().disable();
    if (!telemetry_cfg.metrics_out.empty()) {
      write_whole_file(telemetry_cfg.metrics_out,
                       bytes_of(telemetry::MetricsRegistry::global().collect()
                                    .prometheus_text()));
    }
  };

  Cli cli(home, transport_cfg, placement_cfg);
  const auto dispatch = [&]() -> int {
    if (cmd == "init") return cli.init(args);
    if (cmd == "add-authority") return cli.add_authority(args);
    if (cmd == "add-owner") return cli.add_owner(args);
    if (cmd == "add-user") return cli.add_user(args);
    if (cmd == "grant") return cli.grant(args);
    if (cmd == "issue-key") return cli.issue_key(args);
    if (cmd == "encrypt") return cli.encrypt(args);
    if (cmd == "decrypt") return cli.decrypt(args);
    if (cmd == "revoke") return cli.revoke(args);
    if (cmd == "inspect") return cli.inspect(args);
    if (cmd == "status") return cli.status(args);
    if (cmd == "status-json") return cli.status_json(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return usage();
  };
  try {
    int rc;
    {
      // Root span around the command so every nested engine/transport
      // span shares one trace id.
      telemetry::Span root = telemetry::Tracer::global().start_span("cli." + cmd);
      rc = dispatch();
      if (root.active()) root.attr("exit_code", static_cast<uint64_t>(rc));
    }
    if (transport_cfg.show_stats) cli.print_transport_stats();
    export_telemetry();
    return rc;
  } catch (const Error&) {
    if (transport_cfg.show_stats) cli.print_transport_stats();
    export_telemetry();
    throw;
  }
}

}  // namespace
}  // namespace maabe::tools

int main(int argc, char** argv) {
  try {
    return maabe::tools::run(argc, argv);
  } catch (const maabe::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unexpected error: %s\n", e.what());
    return 1;
  }
}
